//! Capacitance-matrix extraction for TSV arrays — the workspace's
//! substitute for the Ansys Q3D runs of the paper's Sec. 2.
//!
//! # Model
//!
//! The extractor composes three analytically tractable ingredients:
//!
//! 1. **Per-via MOS stack** `C_mos,i` — oxide in series with the
//!    bias-dependent depletion capacitance, from
//!    [`MosJunction`], evaluated at the
//!    via's average voltage `p_i · V_dd` (paper Sec. 2). The *MOS
//!    effect* the optimal assignment exploits enters here and only here,
//!    keeping `C(p)` strictly monotone in every probability.
//! 2. **Geometric affinities.** At signalling frequencies the lossy
//!    substrate acts as a conductive medium that *distributes* each
//!    via's MOS capacitance among the surrounding sinks. The affinity of
//!    a pair follows the parallel-cylinder medium formula
//!    `a_ij = s_ij / acosh(d / (2 r_ref))` (evaluated at the reference
//!    depletion radius `r_ref`), with the *E-field sharing* factor
//!    `s_ij = 1 / (1 + β · S_ij)`, where `S_ij` sums Gaussian weights of
//!    all other vias by their distance to the segment connecting the
//!    pair — interposed conductors screen the coupling. This reproduces
//!    the edge effects of Ref. \[5\]: rim pairs (fewest screens) couple
//!    most strongly, diagonal pairs are screened by the interposed
//!    direct neighbours, and collinear two-pitch pairs are almost fully
//!    screened.
//! 3. **Ground affinity.** Each via reaches the substrate contact
//!    through its *free perimeter* (sectors of its 8-neighbourhood not
//!    blocked by another via) plus a small bulk term; rim vias see more
//!    ground.
//!
//! The entries of the matrix are then the *saturating divider*
//!
//! ```text
//! C_ij = series(C_mos,i, C_mos,j) · a_ij / (κ + (A_i + A_j)/2)
//! C_ii = C_mos,i                  · a_i,gnd / (κ + A_i)
//! ```
//!
//! where `A_i = Σ_j a_ij + a_i,gnd` is via `i`'s total affinity and `κ`
//! a saturation constant. The divider is deliberately *non-conserving*:
//! a via surrounded by many sinks utilises more of its MOS capacitance
//! (`A/(κ+A)` grows with `A`), so middle vias end up with the highest
//! and corner vias with the lowest total capacitance — exactly the
//! heterogeneity of Ref. \[5\] that the Spiral assignment exploits — while
//! the full MOS swing still passes straight through to every entry. The
//! resulting matrix `C` stores ground capacitances on the diagonal and
//! couplings off-diagonal, exactly the form the power model `⟨T, C⟩`
//! consumes.

use crate::depletion::MosJunction;
use crate::materials::V_DD;
use crate::{ModelError, TsvArray};
use tsv3d_matrix::Matrix;

/// Tunable parameters of the extraction model.
///
/// The defaults are calibrated so that the qualitative facts the paper
/// relies on hold (verified by this crate's test-suite): corner totals
/// lowest, direct > diagonal coupling, biggest couplings at
/// corner–edge pairs, and up-to-≈40 % capacitance drop from the MOS
/// effect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtractionOptions {
    /// E-field-sharing strength `β`: larger values screen shared fields
    /// more aggressively.
    pub shielding_strength: f64,
    /// E-field-sharing range `λ` in units of the pitch: the Gaussian
    /// radius within which a third via screens a pair.
    pub shielding_range: f64,
    /// Bulk (wafer-contact) ground affinity, as a fraction of the
    /// one-pitch reference affinity.
    pub ground_bulk: f64,
    /// Additional ground affinity per free perimeter sector, as a
    /// fraction of the one-pitch reference affinity.
    pub ground_sector: f64,
    /// Saturation constant `κ` of the capacitance-distribution divider,
    /// in affinity units: smaller values drive every via towards full
    /// utilisation of its MOS capacitance (homogeneous totals), larger
    /// values emphasise the corner/edge/middle heterogeneity.
    pub saturation: f64,
}

impl Default for ExtractionOptions {
    fn default() -> Self {
        Self {
            shielding_strength: 2.0,
            shielding_range: 0.6,
            ground_bulk: 0.10,
            ground_sector: 0.015,
            saturation: 25.0,
        }
    }
}

/// Capacitance extractor for one TSV array.
///
/// # Examples
///
/// The MOS effect: driving every via with all-ones data (p = 1) yields a
/// markedly smaller capacitance matrix than all-zeros data (p = 0):
///
/// ```
/// use tsv3d_model::{Extractor, TsvArray, TsvGeometry};
///
/// # fn main() -> Result<(), tsv3d_model::ModelError> {
/// let ex = Extractor::new(TsvArray::new(3, 3, TsvGeometry::wide_2018())?);
/// let c0 = ex.extract(&[0.0; 9])?;
/// let c1 = ex.extract(&[1.0; 9])?;
/// assert!(c1.total() < c0.total());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Extractor {
    array: TsvArray,
    options: ExtractionOptions,
    junction: MosJunction,
    /// Depletion-boundary radius at the reference bias `V_dd / 2`, m.
    ///
    /// The substrate field geometry is linearised at this radius so that
    /// the bit probabilities act on the capacitances *only* through the
    /// per-via MOS series stacks; this keeps `C(p)` strictly decreasing
    /// in every probability, matching the monotone MOS effect the paper
    /// exploits.
    reference_radius: f64,
    /// Pairwise geometric affinities `a_ij` (zero diagonal),
    /// dimensionless.
    affinity: Matrix,
    /// Per-via ground affinities `a_i,gnd`, dimensionless.
    affinity_gnd: Vec<f64>,
    /// Per-via affinity totals `A_i = Σ_j a_ij + a_i,gnd`.
    affinity_total: Vec<f64>,
    /// Global normalisation restoring the absolute capacitance scale:
    /// the saturating divider is calibrated so that the *mean* total
    /// capacitance at balanced probabilities equals the MOS stack at the
    /// reference bias (each via's switching energy is ultimately drawn
    /// through its own MOS capacitance).
    scale: f64,
}

impl Extractor {
    /// Creates an extractor with default [`ExtractionOptions`].
    pub fn new(array: TsvArray) -> Self {
        Self::with_options(array, ExtractionOptions::default())
    }

    /// Creates an extractor with explicit options.
    pub fn with_options(array: TsvArray, options: ExtractionOptions) -> Self {
        let junction = MosJunction::from_geometry(array.geometry());
        let reference_radius = junction
            .effective_radius(V_DD / 2.0)
            .expect("reference depletion solve cannot fail for V_dd/2");
        let mut extractor = Self {
            array,
            options,
            junction,
            reference_radius,
            affinity: Matrix::zeros(0),
            affinity_gnd: Vec::new(),
            affinity_total: Vec::new(),
            scale: 1.0,
        };
        extractor.build_affinities();
        extractor.calibrate_scale();
        extractor
    }

    /// Calibrates the global scale so the mean total capacitance at
    /// balanced probabilities equals the reference MOS capacitance.
    fn calibrate_scale(&mut self) {
        let n = self.array.len();
        let c_ref = self
            .junction
            .mos_capacitance(V_DD / 2.0)
            .expect("reference MOS solve cannot fail");
        let raw = self
            .extract(&vec![0.5; n])
            .expect("balanced-probability extraction cannot fail");
        let mean_total = raw.row_sums().iter().sum::<f64>() / n as f64;
        self.scale = c_ref / mean_total;
    }

    /// Precomputes the probability-independent geometric affinities.
    fn build_affinities(&mut self) {
        let n = self.array.len();
        let pitch = self.array.geometry().pitch;
        let mut affinity = Matrix::zeros(n);
        for i in 0..n {
            for j in (i + 1)..n {
                let a = self.pair_affinity(self.array.distance(i, j))
                    * self.sharing_factor(i, j);
                affinity[(i, j)] = a;
                affinity[(j, i)] = a;
            }
        }
        let gnd_ref = self.pair_affinity(pitch);
        let affinity_gnd: Vec<f64> = (0..n)
            .map(|i| {
                let free = 8 - self.array.neighbour_count(i);
                (self.options.ground_bulk + self.options.ground_sector * free as f64) * gnd_ref
            })
            .collect();
        let affinity_total: Vec<f64> = (0..n)
            .map(|i| affinity.row_sum(i) + affinity_gnd[i])
            .collect();
        self.affinity = affinity;
        self.affinity_gnd = affinity_gnd;
        self.affinity_total = affinity_total;
    }

    /// Dimensionless medium affinity of two parallel cylinders at centre
    /// distance `d` (the parallel-wire conductance shape).
    fn pair_affinity(&self, d: f64) -> f64 {
        // acosh needs an argument > 1; when depletion regions (almost)
        // touch, the medium gap vanishes and the affinity saturates at a
        // large value, which the clamp models.
        let x = (d / (2.0 * self.reference_radius)).max(1.02);
        1.0 / x.acosh()
    }

    /// The modelled array.
    pub fn array(&self) -> &TsvArray {
        &self.array
    }

    /// The MOS junction shared by every via of the array.
    pub fn junction(&self) -> &MosJunction {
        &self.junction
    }

    /// Extracts the capacitance matrix for per-via 1-bit probabilities
    /// `probs` (the average via voltage is `p_i · V_dd`).
    ///
    /// Entry `(i, i)` is the ground capacitance of via `i`; entry
    /// `(i, j)` the coupling capacitance between vias `i` and `j`. All
    /// values in farads.
    ///
    /// # Errors
    ///
    /// * [`ModelError::ProbabilityCountMismatch`] if `probs.len()` differs
    ///   from the via count;
    /// * [`ModelError::InvalidProbability`] for probabilities outside
    ///   `[0, 1]`;
    /// * [`ModelError::DepletionSolveFailed`] if the Poisson solve fails.
    pub fn extract(&self, probs: &[f64]) -> Result<Matrix, ModelError> {
        let n = self.array.len();
        if probs.len() != n {
            return Err(ModelError::ProbabilityCountMismatch {
                got: probs.len(),
                expected: n,
            });
        }
        for (index, &p) in probs.iter().enumerate() {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(ModelError::InvalidProbability { index, value: p });
            }
        }

        // Per-via average MOS capacitance: the time-share mix of the
        // depleted (bit = 1) and undepleted (bit = 0) level capacitances,
        // linear in the 1-probability.
        let mut c_mos = Vec::with_capacity(n);
        for &p in probs {
            c_mos.push(self.junction.average_capacitance(p, V_DD)?);
        }

        let mut c = Matrix::zeros(n);
        // Coupling capacitances.
        for i in 0..n {
            for j in (i + 1)..n {
                let coupling = self.pair_coupling(i, j, &c_mos);
                c[(i, j)] = coupling;
                c[(j, i)] = coupling;
            }
        }
        // Ground capacitances.
        for i in 0..n {
            c[(i, i)] = self.ground_cap(i, c_mos[i]);
        }
        Ok(c)
    }

    /// E-field-sharing attenuation for the pair `(i, j)`: third vias close
    /// to the connecting segment screen the coupling.
    fn sharing_factor(&self, i: usize, j: usize) -> f64 {
        let lambda = self.options.shielding_range * self.array.geometry().pitch;
        let (ax, ay) = self.array.position(i);
        let (bx, by) = self.array.position(j);
        let mut s = 0.0;
        for k in 0..self.array.len() {
            if k == i || k == j {
                continue;
            }
            let (px, py) = self.array.position(k);
            let d = dist_point_segment((px, py), (ax, ay), (bx, by));
            s += (-(d / lambda).powi(2)).exp();
        }
        1.0 / (1.0 + self.options.shielding_strength * s)
    }

    /// Full coupling capacitance between vias `i` and `j`: the series
    /// combination of the two MOS stacks, scaled by the saturating
    /// affinity divider.
    fn pair_coupling(&self, i: usize, j: usize, c_mos: &[f64]) -> f64 {
        let weight = self.affinity[(i, j)]
            / (self.options.saturation + 0.5 * (self.affinity_total[i] + self.affinity_total[j]));
        series2(c_mos[i], c_mos[j]) * weight * self.scale
    }

    /// Ground capacitance of via `i`: its MOS stack (the contact is an
    /// ideal conductor), scaled by its ground share of the divider.
    fn ground_cap(&self, i: usize, c_mos: f64) -> f64 {
        c_mos * self.affinity_gnd[i] / (self.options.saturation + self.affinity_total[i])
            * self.scale
    }
}

/// Series combination of two capacitances.
fn series2(a: f64, b: f64) -> f64 {
    a * b / (a + b)
}

/// Distance from point `p` to the segment `a`–`b`.
fn dist_point_segment(p: (f64, f64), a: (f64, f64), b: (f64, f64)) -> f64 {
    let (px, py) = p;
    let (ax, ay) = a;
    let (bx, by) = b;
    let (dx, dy) = (bx - ax, by - ay);
    let len2 = dx * dx + dy * dy;
    let t = if len2 == 0.0 {
        0.0
    } else {
        (((px - ax) * dx + (py - ay) * dy) / len2).clamp(0.0, 1.0)
    };
    let (cx, cy) = (ax + t * dx, ay + t * dy);
    ((px - cx).powi(2) + (py - cy).powi(2)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TsvGeometry;

    fn extractor(rows: usize, cols: usize, g: TsvGeometry) -> Extractor {
        Extractor::new(TsvArray::new(rows, cols, g).expect("valid array"))
    }

    fn extract_uniform(ex: &Extractor, p: f64) -> Matrix {
        ex.extract(&vec![p; ex.array().len()]).expect("extraction")
    }

    #[test]
    fn rejects_bad_probability_vectors() {
        let ex = extractor(3, 3, TsvGeometry::wide_2018());
        assert!(matches!(
            ex.extract(&[0.5; 4]),
            Err(ModelError::ProbabilityCountMismatch { .. })
        ));
        let mut p = vec![0.5; 9];
        p[2] = 1.5;
        assert!(matches!(
            ex.extract(&p),
            Err(ModelError::InvalidProbability { index: 2, .. })
        ));
    }

    #[test]
    fn matrix_is_symmetric_and_positive() {
        let ex = extractor(4, 4, TsvGeometry::wide_2018());
        let c = extract_uniform(&ex, 0.5);
        assert!(c.is_symmetric(1e-25));
        for (_, _, v) in c.entries() {
            assert!(v > 0.0, "all capacitances must be positive");
        }
    }

    #[test]
    fn direct_coupling_exceeds_diagonal() {
        let ex = extractor(3, 3, TsvGeometry::wide_2018());
        let c = extract_uniform(&ex, 0.5);
        // centre = 4; direct neighbour = 1; diagonal neighbour = 0.
        assert!(c[(4, 1)] > 1.3 * c[(4, 0)], "direct {} vs diag {}", c[(4, 1)], c[(4, 0)]);
    }

    #[test]
    fn two_pitch_coupling_is_screened() {
        let ex = extractor(3, 3, TsvGeometry::wide_2018());
        let c = extract_uniform(&ex, 0.5);
        // (0,0)-(0,2) has (0,1) directly interposed.
        assert!(c[(0, 2)] < 0.45 * c[(0, 1)]);
    }

    #[test]
    fn corner_edge_pairs_have_biggest_couplings() {
        // Paper Sec. 4: "the biggest coupling capacitances are located
        // between corner TSVs and their two direct adjacent edge TSVs".
        let ex = extractor(4, 4, TsvGeometry::wide_2018());
        let c = extract_uniform(&ex, 0.5);
        let corner_edge = c[(0, 1)];
        let mut max_other: f64 = 0.0;
        for i in 0..16 {
            for j in (i + 1)..16 {
                let is_corner_edge = matches!(
                    (ex.array().class(i), ex.array().class(j)),
                    (crate::PositionClass::Corner, crate::PositionClass::Edge)
                        | (crate::PositionClass::Edge, crate::PositionClass::Corner)
                ) && ex.array().distance(i, j) <= ex.array().geometry().pitch * 1.01;
                if !is_corner_edge {
                    max_other = max_other.max(c[(i, j)]);
                }
            }
        }
        assert!(
            corner_edge > max_other,
            "corner-edge {corner_edge:.3e} vs max other {max_other:.3e}"
        );
    }

    #[test]
    fn total_capacitance_ordering_corner_edge_middle() {
        // Paper Sec. 4: corner TSVs lowest total capacitance, edges below
        // middles.
        let ex = extractor(4, 4, TsvGeometry::wide_2018());
        let c = extract_uniform(&ex, 0.5);
        let totals = c.row_sums();
        let avg = |class: crate::PositionClass| {
            let sel: Vec<f64> = (0..16)
                .filter(|&i| ex.array().class(i) == class)
                .map(|i| totals[i])
                .collect();
            sel.iter().sum::<f64>() / sel.len() as f64
        };
        let corner = avg(crate::PositionClass::Corner);
        let edge = avg(crate::PositionClass::Edge);
        let middle = avg(crate::PositionClass::Middle);
        assert!(corner < edge, "corner {corner:.3e} vs edge {edge:.3e}");
        assert!(edge < middle, "edge {edge:.3e} vs middle {middle:.3e}");
        // And every individual corner must be below every individual middle.
        for i in 0..16 {
            for j in 0..16 {
                if ex.array().class(i) == crate::PositionClass::Corner
                    && ex.array().class(j) == crate::PositionClass::Middle
                {
                    assert!(totals[i] < totals[j]);
                }
            }
        }
    }

    #[test]
    fn mos_effect_reduces_caps_by_tens_of_percent() {
        // Paper Sec. 3 / Ref. [6]: up to 40 % lower capacitance values for
        // all-ones biasing. The effect is strongest for the minimum ITRS
        // geometry, where the ≈1 µm depletion width is large relative to
        // the via radius.
        let ex = extractor(3, 3, TsvGeometry::itrs_2018_min());
        let c0 = extract_uniform(&ex, 0.0);
        let c1 = extract_uniform(&ex, 1.0);
        let reduction = 1.0 - c1.total() / c0.total();
        assert!(
            reduction > 0.20 && reduction < 0.60,
            "min-geometry reduction {reduction:.3}"
        );

        let ex = extractor(3, 3, TsvGeometry::wide_2018());
        let c0 = extract_uniform(&ex, 0.0);
        let c1 = extract_uniform(&ex, 1.0);
        let reduction = 1.0 - c1.total() / c0.total();
        assert!(
            reduction > 0.08 && reduction < 0.60,
            "wide-geometry reduction {reduction:.3}"
        );
    }

    #[test]
    fn capacitance_monotone_in_probability() {
        let ex = extractor(3, 3, TsvGeometry::itrs_2018_min());
        let mut last_total = f64::INFINITY;
        for k in 0..=10 {
            let c = extract_uniform(&ex, k as f64 / 10.0);
            let t = c.total();
            assert!(t < last_total, "total must fall with rising probability");
            last_total = t;
        }
    }

    #[test]
    fn single_via_probability_only_affects_its_caps() {
        let ex = extractor(3, 3, TsvGeometry::wide_2018());
        let base = extract_uniform(&ex, 0.5);
        let mut probs = vec![0.5; 9];
        probs[4] = 1.0;
        let c = ex.extract(&probs).unwrap();
        // Couplings not involving via 4 are unchanged.
        assert!((c[(0, 1)] - base[(0, 1)]).abs() / base[(0, 1)] < 1e-12);
        // Couplings involving via 4 shrink.
        assert!(c[(4, 1)] < base[(4, 1)]);
        assert!(c[(4, 4)] < base[(4, 4)]);
    }

    #[test]
    fn coupling_magnitudes_are_plausible_femto_farads() {
        // Sanity on absolute scale: modern TSV couplings are O(1–50 fF).
        let ex = extractor(4, 4, TsvGeometry::wide_2018());
        let c = extract_uniform(&ex, 0.5);
        assert!(c[(0, 1)] > 0.5e-15 && c[(0, 1)] < 50e-15, "{:.3e}", c[(0, 1)]);
    }

    #[test]
    fn rim_exposure_gives_corners_larger_ground_caps() {
        let ex = extractor(4, 4, TsvGeometry::wide_2018());
        let c = extract_uniform(&ex, 0.5);
        assert!(c[(0, 0)] > c[(5, 5)]); // corner ground > middle ground
    }

    #[test]
    fn dist_point_segment_basics() {
        assert_eq!(dist_point_segment((0.0, 1.0), (0.0, 0.0), (2.0, 0.0)), 1.0);
        assert_eq!(dist_point_segment((3.0, 0.0), (0.0, 0.0), (2.0, 0.0)), 1.0);
        assert_eq!(dist_point_segment((1.0, 0.0), (0.0, 0.0), (2.0, 0.0)), 0.0);
        // Degenerate segment.
        assert_eq!(dist_point_segment((3.0, 4.0), (0.0, 0.0), (0.0, 0.0)), 5.0);
    }

    #[test]
    fn series_helpers() {
        assert!((series2(2.0, 2.0) - 1.0).abs() < 1e-12);
        assert!((series2(3.0, 6.0) - 2.0).abs() < 1e-12);
    }
}
