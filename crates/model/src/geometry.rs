//! TSV array geometry: regular `M × N` placements, position classes and
//! the ITRS-2018 geometry presets used throughout the paper.

use crate::ModelError;

/// Geometry of a single (cylindrical, copper) TSV and the array pitch.
///
/// The oxide liner thickness is tied to the radius as `t_ox = r / 5`
/// following the paper's Sec. 2, and the via length equals the 50 µm
/// substrate thickness unless overridden.
///
/// # Examples
///
/// ```
/// use tsv3d_model::TsvGeometry;
///
/// let g = TsvGeometry::itrs_2018_min();
/// assert_eq!(g.radius, 1.0e-6);
/// assert_eq!(g.pitch, 4.0e-6);
/// assert!((g.oxide_thickness() - 0.2e-6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsvGeometry {
    /// Via (metal) radius, m.
    pub radius: f64,
    /// Centre-to-centre pitch between direct neighbours, m.
    pub pitch: f64,
    /// Via length = substrate thickness, m.
    pub length: f64,
}

impl TsvGeometry {
    /// Substrate thickness assumed by the paper, m.
    pub const SUBSTRATE_THICKNESS: f64 = 50.0e-6;

    /// Creates a geometry with the paper's default 50 µm length.
    pub fn new(radius: f64, pitch: f64) -> Self {
        Self {
            radius,
            pitch,
            length: Self::SUBSTRATE_THICKNESS,
        }
    }

    /// Minimum global TSV dimensions predicted by the ITRS for 2018:
    /// `r = 1 µm`, `d = 4 µm` (used in Secs. 5 and 7).
    pub fn itrs_2018_min() -> Self {
        Self::new(1.0e-6, 4.0e-6)
    }

    /// The wider geometry analysed throughout the paper:
    /// `r = 2 µm`, `d = 8 µm` (the "common case today").
    pub fn wide_2018() -> Self {
        Self::new(2.0e-6, 8.0e-6)
    }

    /// The 5×5-array geometry of Fig. 2: `r = 1 µm`, `d = 4.5 µm`.
    pub fn fig2_5x5() -> Self {
        Self::new(1.0e-6, 4.5e-6)
    }

    /// Oxide liner thickness `t_ox = r / 5` (paper Sec. 2), m.
    pub fn oxide_thickness(&self) -> f64 {
        self.radius / 5.0
    }

    /// Outer radius of the oxide liner, `r + t_ox`, m.
    pub fn oxide_outer_radius(&self) -> f64 {
        self.radius + self.oxide_thickness()
    }

    /// Validates that all parameters are physically meaningful.
    ///
    /// # Errors
    ///
    /// [`ModelError::NonPositiveGeometry`] for non-positive parameters and
    /// [`ModelError::PitchTooSmall`] when vias would overlap.
    pub fn validate(&self) -> Result<(), ModelError> {
        // `<= 0.0 || is_nan` mirrors the old `!(x > 0.0)`: NaN must fail.
        if self.radius <= 0.0 || self.radius.is_nan() {
            return Err(ModelError::NonPositiveGeometry { name: "radius" });
        }
        if self.pitch <= 0.0 || self.pitch.is_nan() {
            return Err(ModelError::NonPositiveGeometry { name: "pitch" });
        }
        if self.length <= 0.0 || self.length.is_nan() {
            return Err(ModelError::NonPositiveGeometry { name: "length" });
        }
        let min = 2.0 * self.oxide_outer_radius();
        if self.pitch <= min {
            return Err(ModelError::PitchTooSmall {
                pitch: self.pitch,
                min,
            });
        }
        Ok(())
    }
}

/// Classification of a TSV position inside the array rim structure.
///
/// The paper's systematic assignments rely on this classification: corner
/// TSVs have the lowest total capacitance, edge TSVs the next lowest, and
/// middle TSVs the highest (Sec. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PositionClass {
    /// One of the (up to four) array corners.
    Corner,
    /// On the array rim but not a corner.
    Edge,
    /// Fully surrounded by eight neighbours.
    Middle,
}

/// A regular `rows × cols` TSV array.
///
/// TSV indices are row-major: the TSV at `(row, col)` has index
/// `row * cols + col`.
///
/// # Examples
///
/// ```
/// use tsv3d_model::{PositionClass, TsvArray, TsvGeometry};
///
/// # fn main() -> Result<(), tsv3d_model::ModelError> {
/// let a = TsvArray::new(3, 3, TsvGeometry::itrs_2018_min())?;
/// assert_eq!(a.len(), 9);
/// assert_eq!(a.class(0), PositionClass::Corner);
/// assert_eq!(a.class(1), PositionClass::Edge);
/// assert_eq!(a.class(4), PositionClass::Middle);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TsvArray {
    rows: usize,
    cols: usize,
    geometry: TsvGeometry,
}

impl TsvArray {
    /// Creates a regular `rows × cols` array with the given via geometry.
    ///
    /// # Errors
    ///
    /// [`ModelError::EmptyArray`] if either dimension is zero, plus any
    /// error from [`TsvGeometry::validate`].
    pub fn new(rows: usize, cols: usize, geometry: TsvGeometry) -> Result<Self, ModelError> {
        if rows == 0 || cols == 0 {
            return Err(ModelError::EmptyArray);
        }
        geometry.validate()?;
        Ok(Self {
            rows,
            cols,
            geometry,
        })
    }

    /// Number of rows (`M`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (`N`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of TSVs.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// `true` if the array contains no TSVs (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The per-via geometry.
    pub fn geometry(&self) -> &TsvGeometry {
        &self.geometry
    }

    /// `(row, col)` of TSV `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn row_col(&self, index: usize) -> (usize, usize) {
        assert!(index < self.len(), "TSV index {index} out of bounds");
        (index / self.cols, index % self.cols)
    }

    /// Index of the TSV at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn index(&self, row: usize, col: usize) -> usize {
        assert!(row < self.rows && col < self.cols, "({row},{col}) out of bounds");
        row * self.cols + col
    }

    /// Physical `(x, y)` centre position of TSV `index`, in metres,
    /// with TSV 0 at the origin.
    pub fn position(&self, index: usize) -> (f64, f64) {
        let (r, c) = self.row_col(index);
        (c as f64 * self.geometry.pitch, r as f64 * self.geometry.pitch)
    }

    /// Euclidean centre-to-centre distance between two TSVs, m.
    pub fn distance(&self, a: usize, b: usize) -> f64 {
        let (xa, ya) = self.position(a);
        let (xb, yb) = self.position(b);
        ((xa - xb).powi(2) + (ya - yb).powi(2)).sqrt()
    }

    /// Number of adjacent neighbours (8-neighbourhood) of TSV `index`.
    pub fn neighbour_count(&self, index: usize) -> usize {
        self.neighbours(index).count()
    }

    /// Iterator over the (up to eight) adjacent neighbours of TSV `index`.
    pub fn neighbours(&self, index: usize) -> impl Iterator<Item = usize> + '_ {
        let (r, c) = self.row_col(index);
        let rows = self.rows as isize;
        let cols = self.cols as isize;
        (-1isize..=1)
            .flat_map(move |dr| (-1isize..=1).map(move |dc| (dr, dc)))
            .filter(|&(dr, dc)| dr != 0 || dc != 0)
            .filter_map(move |(dr, dc)| {
                let nr = r as isize + dr;
                let nc = c as isize + dc;
                if nr >= 0 && nr < rows && nc >= 0 && nc < cols {
                    Some((nr * cols + nc) as usize)
                } else {
                    None
                }
            })
    }

    /// Position class (corner / edge / middle) of TSV `index`.
    ///
    /// Degenerate arrays (single row or column) classify their interior
    /// vias as `Edge` and the end vias as `Corner`.
    pub fn class(&self, index: usize) -> PositionClass {
        let (r, c) = self.row_col(index);
        let on_row_rim = r == 0 || r + 1 == self.rows;
        let on_col_rim = c == 0 || c + 1 == self.cols;
        match (on_row_rim, on_col_rim) {
            (true, true) => PositionClass::Corner,
            (true, false) | (false, true) => PositionClass::Edge,
            (false, false) => PositionClass::Middle,
        }
    }

    /// Indices ordered as a *spiral* from the corners inwards: all corners
    /// first, then the remaining rim, then the next ring, and so on.
    /// Within a ring the order follows the ring clockwise starting at its
    /// top-left corner.
    ///
    /// This is the TSV-side ordering of the paper's Spiral assignment
    /// (Fig. 1.a): low-capacitance rim positions come first.
    pub fn spiral_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.len());
        let mut ring = 0usize;
        while order.len() < self.len() {
            let r0 = ring;
            let r1 = self.rows.saturating_sub(1 + ring);
            let c0 = ring;
            let c1 = self.cols.saturating_sub(1 + ring);
            if r0 > r1 || c0 > c1 {
                break;
            }
            let mut ring_members = Vec::new();
            // Top row, left-to-right.
            for c in c0..=c1 {
                ring_members.push(self.index(r0, c));
            }
            // Right column, top-to-bottom (excluding corners already seen).
            for r in (r0 + 1)..=r1 {
                ring_members.push(self.index(r, c1));
            }
            if r1 > r0 {
                // Bottom row, right-to-left.
                for c in (c0..c1).rev() {
                    ring_members.push(self.index(r1, c));
                }
            }
            if c1 > c0 {
                // Left column, bottom-to-top.
                for r in ((r0 + 1)..r1).rev() {
                    ring_members.push(self.index(r, c0));
                }
            }
            // Corners of this ring first (lowest capacitance), then the rest
            // in ring order.
            let (corners, rest): (Vec<_>, Vec<_>) = ring_members
                .into_iter()
                .partition(|&i| self.is_ring_corner(i, ring));
            order.extend(corners);
            order.extend(rest);
            ring += 1;
        }
        order
    }

    fn is_ring_corner(&self, index: usize, ring: usize) -> bool {
        let (r, c) = self.row_col(index);
        let r0 = ring;
        let r1 = self.rows - 1 - ring;
        let c0 = ring;
        let c1 = self.cols - 1 - ring;
        (r == r0 || r == r1) && (c == c0 || c == c1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array(rows: usize, cols: usize) -> TsvArray {
        TsvArray::new(rows, cols, TsvGeometry::wide_2018()).expect("valid array")
    }

    #[test]
    fn presets_match_paper_dimensions() {
        let g = TsvGeometry::itrs_2018_min();
        assert_eq!((g.radius, g.pitch), (1.0e-6, 4.0e-6));
        let g = TsvGeometry::wide_2018();
        assert_eq!((g.radius, g.pitch), (2.0e-6, 8.0e-6));
        let g = TsvGeometry::fig2_5x5();
        assert_eq!((g.radius, g.pitch), (1.0e-6, 4.5e-6));
        assert_eq!(g.length, 50.0e-6);
    }

    #[test]
    fn oxide_thickness_is_radius_over_five() {
        let g = TsvGeometry::new(2.0e-6, 8.0e-6);
        assert!((g.oxide_thickness() - 0.4e-6).abs() < 1e-15);
        assert!((g.oxide_outer_radius() - 2.4e-6).abs() < 1e-15);
    }

    #[test]
    fn validate_rejects_overlapping_vias() {
        let g = TsvGeometry::new(2.0e-6, 4.0e-6); // needs > 4.8 µm
        assert!(matches!(g.validate(), Err(ModelError::PitchTooSmall { .. })));
    }

    #[test]
    fn validate_rejects_nonpositive() {
        assert!(TsvGeometry::new(0.0, 4e-6).validate().is_err());
        assert!(TsvGeometry::new(1e-6, -1.0).validate().is_err());
        let mut g = TsvGeometry::itrs_2018_min();
        g.length = 0.0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn empty_array_rejected() {
        assert_eq!(
            TsvArray::new(0, 3, TsvGeometry::itrs_2018_min()).unwrap_err(),
            ModelError::EmptyArray
        );
    }

    #[test]
    fn row_col_round_trip() {
        let a = array(4, 5);
        for i in 0..a.len() {
            let (r, c) = a.row_col(i);
            assert_eq!(a.index(r, c), i);
        }
    }

    #[test]
    fn distances_match_pitch() {
        let a = array(3, 3);
        let d = a.geometry().pitch;
        assert!((a.distance(0, 1) - d).abs() < 1e-15);
        assert!((a.distance(0, 3) - d).abs() < 1e-15);
        assert!((a.distance(0, 4) - d * 2f64.sqrt()).abs() < 1e-15);
        assert!((a.distance(0, 8) - d * 8f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn neighbour_counts_by_class() {
        let a = array(4, 4);
        assert_eq!(a.neighbour_count(0), 3); // corner
        assert_eq!(a.neighbour_count(1), 5); // edge
        assert_eq!(a.neighbour_count(5), 8); // middle
    }

    #[test]
    fn classes_of_3x3() {
        let a = array(3, 3);
        let classes: Vec<_> = (0..9).map(|i| a.class(i)).collect();
        use PositionClass::*;
        assert_eq!(
            classes,
            vec![Corner, Edge, Corner, Edge, Middle, Edge, Corner, Edge, Corner]
        );
    }

    #[test]
    fn single_row_classifies_ends_as_corners() {
        // In a 1×N array the end vias sit on both rims (corners); the
        // interior vias sit on the row rim only (edges).
        let a = array(1, 4);
        assert_eq!(a.class(0), PositionClass::Corner);
        assert_eq!(a.class(1), PositionClass::Edge);
        assert_eq!(a.class(3), PositionClass::Corner);
        assert_eq!(a.neighbour_count(0), 1);
        assert_eq!(a.neighbour_count(1), 2);
    }

    #[test]
    fn spiral_order_visits_every_tsv_once() {
        for (r, c) in [(3, 3), (4, 4), (5, 5), (4, 8), (2, 6), (1, 5)] {
            let a = array(r, c);
            let mut order = a.spiral_order();
            assert_eq!(order.len(), a.len(), "{r}x{c}");
            order.sort_unstable();
            assert_eq!(order, (0..a.len()).collect::<Vec<_>>(), "{r}x{c}");
        }
    }

    #[test]
    fn spiral_order_starts_with_corners() {
        let a = array(4, 4);
        let order = a.spiral_order();
        let corners: Vec<_> = order[..4]
            .iter()
            .map(|&i| a.class(i))
            .collect();
        assert!(corners.iter().all(|&c| c == PositionClass::Corner));
        // Next come the edges of the outer ring.
        assert!(order[4..12].iter().all(|&i| a.class(i) == PositionClass::Edge));
        // The inner 2×2 ring comes last.
        assert!(order[12..].iter().all(|&i| a.class(i) == PositionClass::Middle));
    }
}
