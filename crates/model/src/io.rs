//! Interchange formats: capacitance-matrix CSV and SPICE netlist
//! export.
//!
//! The extractor in this crate is a substitute for a commercial field
//! solver; teams with access to Q3D (or measured data) can import their
//! own matrices through [`matrix_from_csv`] and run the exact same
//! assignment flow. In the other direction, [`to_spice`] emits the
//! link's RLC ladder as a SPICE subcircuit so the assignment result can
//! be validated in any external circuit simulator — the workspace's
//! equivalent of the paper's Spectre hand-off.

use crate::{ModelError, TsvRcNetlist};
use std::fmt::Write as _;
use tsv3d_matrix::Matrix;

/// Serialises a capacitance matrix to CSV (plain numbers, row per
/// line, full precision).
///
/// # Examples
///
/// ```
/// use tsv3d_matrix::Matrix;
/// use tsv3d_model::io;
///
/// let m = Matrix::from_rows(&[&[1.0, 0.5], &[0.5, 2.0]]);
/// let csv = io::matrix_to_csv(&m);
/// assert_eq!(io::matrix_from_csv(&csv).unwrap(), m);
/// ```
pub fn matrix_to_csv(matrix: &Matrix) -> String {
    let n = matrix.n();
    let mut out = String::new();
    for i in 0..n {
        for j in 0..n {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{:e}", matrix[(i, j)]);
        }
        out.push('\n');
    }
    out
}

/// Parses a capacitance matrix from CSV (as produced by
/// [`matrix_to_csv`], or exported from a field solver).
///
/// # Errors
///
/// [`ModelError::MatrixParse`] when the input is not a square numeric
/// matrix.
pub fn matrix_from_csv(csv: &str) -> Result<Matrix, ModelError> {
    let rows: Vec<Vec<f64>> = csv
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(|line| {
            line.split(',')
                .map(|cell| {
                    cell.trim().parse::<f64>().map_err(|_| ModelError::MatrixParse {
                        detail: format!("cannot parse `{}` as a number", cell.trim()),
                    })
                })
                .collect()
        })
        .collect::<Result<_, _>>()?;
    let n = rows.len();
    if n == 0 {
        return Err(ModelError::MatrixParse {
            detail: "empty input".to_string(),
        });
    }
    for (i, row) in rows.iter().enumerate() {
        if row.len() != n {
            return Err(ModelError::MatrixParse {
                detail: format!("row {i} has {} cells, expected {n}", row.len()),
            });
        }
    }
    Ok(Matrix::from_fn(n, |i, j| rows[i][j]))
}

/// Emits the TSV link as a SPICE subcircuit.
///
/// Ports are `IN<i>` (driver side) and `OUT<i>` (receiver side) for
/// each via, plus the global `0` ground. Each via becomes a
/// `sections`-segment RLC ladder; coupling and ground capacitances are
/// distributed across the ladder levels exactly as in the internal
/// simulator, so external SPICE runs reproduce the same network.
///
/// # Panics
///
/// Panics if `sections` is zero.
///
/// # Examples
///
/// ```
/// use tsv3d_model::{io, Extractor, TsvArray, TsvGeometry, TsvRcNetlist};
///
/// # fn main() -> Result<(), tsv3d_model::ModelError> {
/// let array = TsvArray::new(2, 2, TsvGeometry::itrs_2018_min())?;
/// let cap = Extractor::new(array.clone()).extract(&[0.5; 4])?;
/// let net = TsvRcNetlist::from_extraction(&array, cap);
/// let spice = io::to_spice(&net, "tsv_bundle", 3);
/// assert!(spice.starts_with(".SUBCKT tsv_bundle"));
/// assert!(spice.contains(".ENDS"));
/// # Ok(())
/// # }
/// ```
pub fn to_spice(netlist: &TsvRcNetlist, name: &str, sections: usize) -> String {
    assert!(sections > 0, "at least one ladder section is required");
    let n = netlist.len();
    let levels = sections + 1;
    let cap = netlist.capacitance();

    // Internal node name of via `i`, ladder level `l`.
    let node = |i: usize, l: usize| -> String {
        if l == 0 {
            format!("IN{i}")
        } else if l == sections {
            format!("OUT{i}")
        } else {
            format!("N{i}_{l}")
        }
    };

    let mut out = String::new();
    let _ = write!(out, ".SUBCKT {name}");
    for i in 0..n {
        let _ = write!(out, " IN{i}");
    }
    for i in 0..n {
        let _ = write!(out, " OUT{i}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "* TSV bundle: {n} vias, {sections}-section RLC ladders");

    let mut r_id = 0usize;
    let mut l_id = 0usize;
    let mut c_id = 0usize;
    for i in 0..n {
        let r_sec = netlist.series_resistance(i) / sections as f64;
        let l_sec = netlist.series_inductance(i) / sections as f64;
        for s in 0..sections {
            // Series R then L per segment through an intermediate node.
            let mid = format!("M{i}_{s}");
            let _ = writeln!(out, "R{r_id} {} {mid} {r_sec:.6e}", node(i, s));
            let _ = writeln!(out, "L{l_id} {mid} {} {l_sec:.6e}", node(i, s + 1));
            r_id += 1;
            l_id += 1;
        }
        for l in 0..levels {
            let _ = writeln!(
                out,
                "C{c_id} {} 0 {:.6e}",
                node(i, l),
                cap[(i, i)] / levels as f64
            );
            c_id += 1;
        }
    }
    for i in 0..n {
        for j in (i + 1)..n {
            for l in 0..levels {
                let _ = writeln!(
                    out,
                    "C{c_id} {} {} {:.6e}",
                    node(i, l),
                    node(j, l),
                    cap[(i, j)] / levels as f64
                );
                c_id += 1;
            }
        }
    }
    let _ = writeln!(out, ".ENDS {name}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Extractor, TsvArray, TsvGeometry};

    fn netlist() -> TsvRcNetlist {
        let array = TsvArray::new(2, 2, TsvGeometry::itrs_2018_min()).expect("array");
        let cap = Extractor::new(array.clone()).extract(&[0.5; 4]).expect("extract");
        TsvRcNetlist::from_extraction(&array, cap)
    }

    #[test]
    fn matrix_csv_round_trips() {
        let m = Matrix::from_fn(5, |i, j| (i * 7 + j) as f64 * 1.3e-15);
        let back = matrix_from_csv(&matrix_to_csv(&m)).unwrap();
        for (i, j, v) in m.entries() {
            assert!((back[(i, j)] - v).abs() < 1e-25);
        }
    }

    #[test]
    fn csv_parse_errors_are_descriptive() {
        assert!(matches!(
            matrix_from_csv(""),
            Err(ModelError::MatrixParse { .. })
        ));
        let e = matrix_from_csv("1,2\n3").unwrap_err();
        assert!(e.to_string().contains("row 1"));
        let e = matrix_from_csv("1,x\n3,4").unwrap_err();
        assert!(e.to_string().contains("`x`"));
    }

    #[test]
    fn csv_accepts_blank_lines_and_whitespace() {
        let m = matrix_from_csv("\n 1 , 2 \n\n 3 , 4 \n").unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn spice_deck_has_all_elements() {
        let spice = to_spice(&netlist(), "bundle", 3);
        // 4 vias × 3 segments of R and L.
        assert_eq!(spice.matches("\nR").count(), 12);
        assert_eq!(spice.matches("\nL").count(), 12);
        // Ground caps: 4 vias × 4 levels; couplings: 6 pairs × 4 levels.
        assert_eq!(spice.matches("\nC").count(), 16 + 24);
        assert!(spice.contains("IN0") && spice.contains("OUT3"));
        assert!(spice.trim_end().ends_with(".ENDS bundle"));
    }

    #[test]
    fn spice_values_are_finite_and_positive() {
        let spice = to_spice(&netlist(), "b", 2);
        for line in spice.lines() {
            if let Some(value) = line.split_whitespace().last() {
                if line.starts_with(['R', 'L', 'C']) {
                    let v: f64 = value.parse().expect("numeric element value");
                    assert!(v > 0.0 && v.is_finite(), "{line}");
                }
            }
        }
    }

    #[test]
    fn single_section_ladder_connects_in_to_out() {
        let spice = to_spice(&netlist(), "b", 1);
        assert!(spice.contains("R0 IN0 M0_0"));
        assert!(spice.contains("L0 M0_0 OUT0"));
    }
}
