//! TSV-array electrical modelling: the "field solver" substrate of the
//! tsv3d workspace.
//!
//! The DAC'18 paper extracts TSV capacitance matrices with Ansys Q3D from
//! 3-D structures. This crate substitutes that proprietary tool with an
//! analytical extractor that reproduces every *structural* property the
//! bit-to-TSV assignment optimisation exploits:
//!
//! * **Heterogeneous couplings** — direct neighbours couple more strongly
//!   than diagonal ones; pairs at the array rim couple more strongly than
//!   pairs in the middle (reduced E-field sharing, see
//!   [`extract::Extractor`]).
//! * **Heterogeneous totals** — corner TSVs have the lowest total
//!   capacitance, middle TSVs the highest.
//! * **MOS effect** — each TSV forms a metal–oxide–semiconductor junction
//!   with the conductive substrate; a higher 1-probability widens the
//!   depletion region (solved from the cylindrical Poisson equation in
//!   [`depletion`]) and lowers the capacitance by up to ≈40 %.
//! * **Near-linear C(p)** — the capacitance-vs-bit-probability relation is
//!   captured by the paper's linear regression (Eqs. 6–9), implemented in
//!   [`linear::LinearCapModel`]; its accuracy against the full extractor is
//!   verified in the test suite.
//!
//! # Examples
//!
//! Extracting the capacitance matrix of the paper's 4×4 array with
//! `r = 2 µm`, `d = 8 µm`:
//!
//! ```
//! use tsv3d_model::{Extractor, TsvArray, TsvGeometry};
//!
//! # fn main() -> Result<(), tsv3d_model::ModelError> {
//! let array = TsvArray::new(4, 4, TsvGeometry::wide_2018())?;
//! let extractor = Extractor::new(array);
//! // All-equal bit probabilities of 1/2 (random data).
//! let c = extractor.extract(&[0.5; 16])?;
//! assert!(c.is_symmetric(1e-22));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod depletion;
mod error;
pub mod noise;
pub mod extract;
mod geometry;
pub mod io;
pub mod linear;
pub mod materials;
mod netlist;

pub use error::ModelError;
pub use extract::Extractor;
pub use geometry::{PositionClass, TsvArray, TsvGeometry};
pub use linear::LinearCapModel;
pub use netlist::TsvRcNetlist;
