//! The paper's linear capacitance-vs-probability model (Eqs. 6–9).
//!
//! The exact bit-probability → capacitance relation (through the
//! cylindrical Poisson solve) is too complex for use inside an
//! optimisation loop. Following the paper (and Ref. \[6\], which reports a
//! normalised RMS error below 2 % for the same regression against a field
//! solver), the capacitances are linearised around balanced bit
//! probabilities:
//!
//! ```text
//! C_ij = C_R,ij + ΔC_ij · (ε_i + ε_j),      ε_i = E{b_i} − 1/2   (Eqs. 7–8)
//! ```
//!
//! An inversion of bit `i` simply negates `ε_i`, which is exactly why this
//! *shifted* form (rather than Eq. 6's `C_0` form) is used: the signed
//! permutation `Aπ` acts on `ε` by signed permutation (Eq. 9).

use crate::{Extractor, ModelError};
use tsv3d_matrix::Matrix;

/// Linearised capacitance model `C(ε) = C_R + ΔC ∘ (ε 1ᵀ + 1 εᵀ)`.
///
/// # Examples
///
/// ```
/// use tsv3d_model::{Extractor, LinearCapModel, TsvArray, TsvGeometry};
///
/// # fn main() -> Result<(), tsv3d_model::ModelError> {
/// let ex = Extractor::new(TsvArray::new(3, 3, TsvGeometry::wide_2018())?);
/// let model = LinearCapModel::fit(&ex)?;
/// // Balanced probabilities reproduce C_R exactly.
/// let c = model.capacitance(&[0.0; 9]);
/// assert_eq!(&c, model.c_r());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearCapModel {
    c_r: Matrix,
    delta_c: Matrix,
}

impl LinearCapModel {
    /// Fits the model from two full extractions, at all-zero and at
    /// all-one bit probabilities (the regression endpoints).
    ///
    /// # Errors
    ///
    /// Propagates any [`ModelError`] from the underlying extractions.
    pub fn fit(extractor: &Extractor) -> Result<Self, ModelError> {
        let n = extractor.array().len();
        let c0 = extractor.extract(&vec![0.0; n])?;
        let c1 = extractor.extract(&vec![1.0; n])?;
        // Eq. 6 endpoints: C(p=0,0) = C_0 and C(p=1,1) = C_0 + 2ΔC.
        let delta_c = (&c1 - &c0).scale(0.5);
        // Eq. 7: C_R = C_0 + ΔC (capacitance at balanced probabilities).
        let c_r = &c0 + &delta_c;
        Ok(Self { c_r, delta_c })
    }

    /// Builds a model from explicit matrices (e.g. imported from a real
    /// field-solver run).
    ///
    /// # Panics
    ///
    /// Panics if the matrices have different dimensions.
    pub fn from_parts(c_r: Matrix, delta_c: Matrix) -> Self {
        assert_eq!(c_r.n(), delta_c.n(), "C_R and ΔC must have equal size");
        Self { c_r, delta_c }
    }

    /// The balanced-probability capacitance matrix `C_R`.
    pub fn c_r(&self) -> &Matrix {
        &self.c_r
    }

    /// The probability sensitivity matrix `ΔC` (negative entries: higher
    /// 1-probability lowers the capacitance).
    pub fn delta_c(&self) -> &Matrix {
        &self.delta_c
    }

    /// Number of vias.
    pub fn n(&self) -> usize {
        self.c_r.n()
    }

    /// Evaluates `C(ε)` for *line-indexed* centred probabilities
    /// `ε_j = E{b on line j} − 1/2` (Eq. 9's `Aπ ε` is applied by the
    /// caller).
    ///
    /// # Panics
    ///
    /// Panics if `eps.len() != self.n()`.
    pub fn capacitance(&self, eps: &[f64]) -> Matrix {
        assert_eq!(eps.len(), self.n(), "epsilon vector length mismatch");
        Matrix::from_fn(self.n(), |i, j| {
            self.c_r[(i, j)] + self.delta_c[(i, j)] * (eps[i] + eps[j])
        })
    }

    /// Convenience: evaluates `C` from raw 1-bit probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `probs.len() != self.n()`.
    pub fn capacitance_at_probs(&self, probs: &[f64]) -> Matrix {
        let eps: Vec<f64> = probs.iter().map(|p| p - 0.5).collect();
        self.capacitance(&eps)
    }

    /// Normalised RMS error of this linear model against the full
    /// extractor over the given probability vectors (normalised by the
    /// mean extracted capacitance), as used to validate the paper's
    /// "below 2 %" claim for its regression.
    ///
    /// # Errors
    ///
    /// Propagates extraction errors.
    pub fn nrmse(&self, extractor: &Extractor, prob_sets: &[Vec<f64>]) -> Result<f64, ModelError> {
        let mut se = 0.0;
        let mut count = 0usize;
        let mut mean_ref = 0.0;
        for probs in prob_sets {
            let exact = extractor.extract(probs)?;
            let approx = self.capacitance_at_probs(probs);
            for (i, j, v) in exact.entries() {
                let e = approx[(i, j)] - v;
                se += e * e;
                mean_ref += v;
                count += 1;
            }
        }
        if count == 0 {
            return Ok(0.0);
        }
        let rmse = (se / count as f64).sqrt();
        Ok(rmse / (mean_ref / count as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TsvArray, TsvGeometry};

    fn fitted(rows: usize, cols: usize) -> (Extractor, LinearCapModel) {
        let ex = Extractor::new(
            TsvArray::new(rows, cols, TsvGeometry::wide_2018()).expect("valid array"),
        );
        let m = LinearCapModel::fit(&ex).expect("fit");
        (ex, m)
    }

    #[test]
    fn endpoints_reproduced_exactly() {
        let (ex, m) = fitted(3, 3);
        let c0 = ex.extract(&[0.0; 9]).unwrap();
        let c1 = ex.extract(&[1.0; 9]).unwrap();
        let a0 = m.capacitance_at_probs(&[0.0; 9]);
        let a1 = m.capacitance_at_probs(&[1.0; 9]);
        for (i, j, v) in c0.entries() {
            assert!((a0[(i, j)] - v).abs() < 1e-25);
        }
        for (i, j, v) in c1.entries() {
            assert!((a1[(i, j)] - v).abs() < 1e-25);
        }
    }

    #[test]
    fn delta_c_is_negative() {
        // Higher 1-probability always lowers capacitance (MOS effect).
        let (_, m) = fitted(3, 3);
        for (_, _, v) in m.delta_c().entries() {
            assert!(v < 0.0, "ΔC entries must be negative, got {v:.3e}");
        }
    }

    #[test]
    fn nrmse_stays_small_like_the_papers_regression() {
        // The paper (via Ref. [6]) reports < 2 % NRMSE for the linear fit
        // against the field solver; our analytical extractor must be
        // captured comparably well for the optimisation to be faithful.
        let (ex, m) = fitted(3, 3);
        let sets: Vec<Vec<f64>> = vec![
            vec![0.5; 9],
            vec![0.25; 9],
            vec![0.75; 9],
            (0..9).map(|i| (i as f64) / 8.0).collect(),
            vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0],
        ];
        let err = m.nrmse(&ex, &sets).unwrap();
        assert!(err < 0.05, "NRMSE = {err:.4}");
    }

    #[test]
    fn inversion_flips_epsilon_sign_consistently() {
        // C with bit probability p on via 0 equals C with probability 1-p
        // when evaluated through a negated epsilon.
        let (_, m) = fitted(3, 3);
        let mut eps = vec![0.0; 9];
        eps[0] = 0.3;
        let c_plus = m.capacitance(&eps);
        eps[0] = -0.3;
        let c_minus = m.capacitance(&eps);
        assert!(c_plus[(0, 1)] < c_minus[(0, 1)]);
        assert_eq!(c_plus[(1, 2)], c_minus[(1, 2)]);
    }

    #[test]
    fn from_parts_round_trips() {
        let (_, m) = fitted(3, 3);
        let m2 = LinearCapModel::from_parts(m.c_r().clone(), m.delta_c().clone());
        assert_eq!(m, m2);
    }

    #[test]
    #[should_panic(expected = "equal size")]
    fn from_parts_rejects_mismatched_dims() {
        let _ = LinearCapModel::from_parts(Matrix::zeros(3), Matrix::zeros(4));
    }
}
