//! Physical constants and material parameters used by the TSV models.
//!
//! All quantities are in SI units. The substrate parameters follow the
//! paper's Sec. 2: p-doped silicon with a conductivity of 10 S/m, SiO₂
//! liners, copper vias, and a 1 V supply.

/// Vacuum permittivity, F/m.
pub const EPS_0: f64 = 8.854_187_8e-12;

/// Relative permittivity of silicon.
pub const EPS_R_SI: f64 = 11.68;

/// Relative permittivity of SiO₂.
pub const EPS_R_OX: f64 = 3.9;

/// Absolute permittivity of silicon, F/m.
pub const EPS_SI: f64 = EPS_R_SI * EPS_0;

/// Absolute permittivity of SiO₂, F/m.
pub const EPS_OX: f64 = EPS_R_OX * EPS_0;

/// Elementary charge, C.
pub const Q_E: f64 = 1.602_176_634e-19;

/// Hole mobility in lightly doped p-silicon at 300 K, m²/(V·s).
pub const MU_P: f64 = 0.045;

/// Substrate conductivity from the paper (Sec. 2), S/m.
pub const SIGMA_SUB: f64 = 10.0;

/// Copper resistivity at 300 K, Ω·m.
pub const RHO_CU: f64 = 1.72e-8;

/// Supply voltage from the paper (Sec. 2), V.
pub const V_DD: f64 = 1.0;

/// Acceptor doping density implied by the substrate conductivity:
/// `N_A = σ / (q µ_p)`, in m⁻³.
///
/// For σ = 10 S/m this evaluates to ≈1.39 × 10²¹ m⁻³
/// (≈1.39 × 10¹⁵ cm⁻³), a typical lightly doped CMOS substrate.
///
/// # Examples
///
/// ```
/// let na = tsv3d_model::materials::acceptor_density();
/// assert!(na > 1.0e21 && na < 2.0e21);
/// ```
pub fn acceptor_density() -> f64 {
    SIGMA_SUB / (Q_E * MU_P)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doping_matches_conductivity() {
        // Round-trip: σ = q µ_p N_A.
        let na = acceptor_density();
        let sigma = Q_E * MU_P * na;
        assert!((sigma - SIGMA_SUB).abs() < 1e-9);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn permittivities_ordered() {
        // Silicon is denser dielectric than oxide. The assertions are
        // constant on purpose: they guard the material-constant table.
        assert!(EPS_SI > EPS_OX);
        assert!(EPS_OX > EPS_0);
    }
}
