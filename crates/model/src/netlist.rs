//! RC netlist export for circuit-level validation.
//!
//! The paper validates the approach with Spectre simulations of "full
//! 3π-RLC circuits of the TSV arrays". This module turns an extracted
//! capacitance matrix into the per-via series parasitics the
//! `tsv3d-circuit` simulator needs to build such a ladder network.

use crate::materials::RHO_CU;
use crate::TsvArray;
use tsv3d_matrix::Matrix;

/// Vacuum permeability, H/m.
const MU_0: f64 = 1.256_637_06e-6;

/// Lumped parasitics of a TSV array: per-via series resistance and
/// inductance plus the full capacitance matrix, ready to be expanded into
/// an n-section π ladder by the circuit simulator.
///
/// # Examples
///
/// ```
/// use tsv3d_model::{Extractor, TsvArray, TsvGeometry, TsvRcNetlist};
///
/// # fn main() -> Result<(), tsv3d_model::ModelError> {
/// let array = TsvArray::new(3, 3, TsvGeometry::itrs_2018_min())?;
/// let ex = Extractor::new(array.clone());
/// let c = ex.extract(&[0.5; 9])?;
/// let net = TsvRcNetlist::from_extraction(&array, c);
/// assert_eq!(net.len(), 9);
/// assert!(net.series_resistance(0) > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TsvRcNetlist {
    resistance: Vec<f64>,
    inductance: Vec<f64>,
    cap: Matrix,
}

impl TsvRcNetlist {
    /// Builds the netlist from an array geometry and an extracted
    /// capacitance matrix (diagonal = ground caps, off-diagonal =
    /// couplings).
    ///
    /// # Panics
    ///
    /// Panics if `cap.n() != array.len()`.
    pub fn from_extraction(array: &TsvArray, cap: Matrix) -> Self {
        assert_eq!(cap.n(), array.len(), "capacitance matrix size mismatch");
        let g = array.geometry();
        let area = std::f64::consts::PI * g.radius * g.radius;
        let r = RHO_CU * g.length / area;
        // Partial self-inductance of a cylindrical conductor.
        let l_ind = MU_0 * g.length / (2.0 * std::f64::consts::PI)
            * ((2.0 * g.length / g.radius).ln() - 1.0);
        Self {
            resistance: vec![r; array.len()],
            inductance: vec![l_ind; array.len()],
            cap,
        }
    }

    /// Number of vias.
    pub fn len(&self) -> usize {
        self.resistance.len()
    }

    /// `true` if the netlist has no vias.
    pub fn is_empty(&self) -> bool {
        self.resistance.is_empty()
    }

    /// Series resistance of via `i`, Ω.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn series_resistance(&self, i: usize) -> f64 {
        self.resistance[i]
    }

    /// Series (partial self-) inductance of via `i`, H.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn series_inductance(&self, i: usize) -> f64 {
        self.inductance[i]
    }

    /// The full capacitance matrix, F.
    pub fn capacitance(&self) -> &Matrix {
        &self.cap
    }

    /// Consumes the netlist and returns its capacitance matrix.
    pub fn into_capacitance(self) -> Matrix {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Extractor, TsvGeometry};

    fn netlist() -> TsvRcNetlist {
        let array = TsvArray::new(3, 3, TsvGeometry::itrs_2018_min()).expect("valid");
        let ex = Extractor::new(array.clone());
        let c = ex.extract(&[0.5; 9]).expect("extract");
        TsvRcNetlist::from_extraction(&array, c)
    }

    #[test]
    fn resistance_is_milliohm_scale() {
        // ρ·l/(π r²) = 1.72e-8 · 50e-6 / (π · 1e-12) ≈ 0.27 Ω.
        let net = netlist();
        let r = net.series_resistance(0);
        assert!(r > 0.05 && r < 2.0, "R = {r}");
    }

    #[test]
    fn inductance_is_tens_of_picohenry() {
        let net = netlist();
        let l = net.series_inductance(0);
        assert!(l > 1e-12 && l < 100e-12, "L = {l:.3e}");
    }

    #[test]
    fn capacitance_preserved() {
        let net = netlist();
        assert_eq!(net.capacitance().n(), 9);
        assert!(!net.is_empty());
        let c = net.clone().into_capacitance();
        assert_eq!(&c, net.capacitance());
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn mismatched_matrix_panics() {
        let array = TsvArray::new(3, 3, TsvGeometry::itrs_2018_min()).expect("valid");
        let _ = TsvRcNetlist::from_extraction(&array, Matrix::zeros(4));
    }
}
