//! Capacitive crosstalk analysis for TSV arrays.
//!
//! The paper's introduction situates the bit-to-TSV assignment against
//! the crosstalk-avoidance codes of Refs. \[13–15\]: those improve signal
//! integrity but add TSVs (and power). This module provides the noise
//! metric needed to make that comparison quantitative: the classic
//! charge-divider bound on the voltage bump induced on a quiet victim
//! via when its aggressors switch,
//!
//! ```text
//! ΔV_i / V_dd = Σ_{j ∈ switching} C_ij / C_T,i
//! ```
//!
//! with `C_T,i` the victim's total capacitance (ground + all
//! couplings). The bound assumes the victim floats at the worst moment
//! (its driver has not yet responded), which is the standard
//! worst-case SI budget.

use tsv3d_matrix::Matrix;

/// Summary of the worst-case (all-aggressor) crosstalk over an array.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseSummary {
    /// Per-victim noise ratio `ΔV/V_dd` with every other via switching.
    pub per_victim: Vec<f64>,
    /// The largest per-victim ratio.
    pub worst: f64,
    /// Index of the worst victim.
    pub worst_victim: usize,
}

/// Noise ratio `ΔV_i / V_dd` on `victim` when exactly the vias selected
/// by `switching` toggle (the victim itself is ignored if selected).
///
/// # Panics
///
/// Panics if `victim` is out of range.
///
/// # Examples
///
/// ```
/// use tsv3d_matrix::Matrix;
/// use tsv3d_model::noise;
///
/// // 2 vias: ground 1.0 each, coupling 0.5.
/// let c = Matrix::from_rows(&[&[1.0, 0.5], &[0.5, 1.0]]);
/// let r = noise::victim_noise_ratio(&c, 0, |j| j == 1);
/// assert!((r - 0.5 / 1.5).abs() < 1e-12);
/// ```
pub fn victim_noise_ratio(cap: &Matrix, victim: usize, switching: impl Fn(usize) -> bool) -> f64 {
    let n = cap.n();
    assert!(victim < n, "victim {victim} out of range");
    let total = cap.row_sum(victim);
    if total <= 0.0 {
        return 0.0;
    }
    let coupled: f64 = (0..n)
        .filter(|&j| j != victim && switching(j))
        .map(|j| cap[(victim, j)])
        .sum();
    coupled / total
}

/// Worst-case summary: every aggressor switches against every victim.
///
/// # Examples
///
/// ```
/// use tsv3d_model::{noise, Extractor, TsvArray, TsvGeometry};
///
/// # fn main() -> Result<(), tsv3d_model::ModelError> {
/// let ex = Extractor::new(TsvArray::new(3, 3, TsvGeometry::itrs_2018_min())?);
/// let summary = noise::worst_case(&ex.extract(&[0.5; 9])?);
/// // Middle vias have the most aggressors, hence the most noise.
/// assert_eq!(summary.worst_victim, 4);
/// # Ok(())
/// # }
/// ```
pub fn worst_case(cap: &Matrix) -> NoiseSummary {
    let n = cap.n();
    let per_victim: Vec<f64> = (0..n)
        .map(|i| victim_noise_ratio(cap, i, |_| true))
        .collect();
    let (worst_victim, worst) = per_victim
        .iter()
        .copied()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap_or((0, 0.0));
    NoiseSummary {
        per_victim,
        worst,
        worst_victim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Extractor, TsvArray, TsvGeometry};

    fn cap_3x3() -> Matrix {
        Extractor::new(TsvArray::new(3, 3, TsvGeometry::itrs_2018_min()).expect("valid"))
            .extract(&[0.5; 9])
            .expect("extract")
    }

    #[test]
    fn noise_is_a_fraction_of_vdd() {
        let summary = worst_case(&cap_3x3());
        for &r in &summary.per_victim {
            assert!((0.0..1.0).contains(&r), "ratio {r}");
        }
        assert!(summary.worst > 0.2, "TSV crosstalk is substantial: {summary:?}");
    }

    #[test]
    fn middle_victim_is_worst() {
        let summary = worst_case(&cap_3x3());
        assert_eq!(summary.worst_victim, 4);
    }

    #[test]
    fn fewer_aggressors_less_noise() {
        let c = cap_3x3();
        let all = victim_noise_ratio(&c, 4, |_| true);
        let one = victim_noise_ratio(&c, 4, |j| j == 1);
        let none = victim_noise_ratio(&c, 4, |_| false);
        assert!(none == 0.0 && one > 0.0 && one < all);
    }

    #[test]
    fn victim_excluded_from_its_own_aggressors() {
        let c = cap_3x3();
        assert_eq!(
            victim_noise_ratio(&c, 4, |j| j == 4),
            0.0,
            "a via is not its own aggressor"
        );
    }

    #[test]
    fn zero_matrix_yields_zero_noise() {
        let summary = worst_case(&Matrix::zeros(4));
        assert_eq!(summary.worst, 0.0);
    }
}
