//! Property-based tests of the capacitance extraction pipeline.

use proptest::prelude::*;
use tsv3d_model::{Extractor, LinearCapModel, TsvArray, TsvGeometry};

fn extractor() -> Extractor {
    Extractor::new(TsvArray::new(3, 3, TsvGeometry::itrs_2018_min()).expect("valid array"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn extraction_is_symmetric_and_positive(probs in prop::collection::vec(0.0f64..=1.0, 9)) {
        let c = extractor().extract(&probs).expect("valid probabilities");
        prop_assert!(c.is_symmetric(1e-28));
        for (_, _, v) in c.entries() {
            prop_assert!(v > 0.0 && v.is_finite());
        }
    }

    #[test]
    fn raising_one_probability_never_raises_any_capacitance(
        probs in prop::collection::vec(0.05f64..=0.9, 9),
        via in 0usize..9,
        bump in 0.01f64..0.1,
    ) {
        let ex = extractor();
        let base = ex.extract(&probs).expect("valid");
        let mut higher = probs.clone();
        higher[via] = (higher[via] + bump).min(1.0);
        let after = ex.extract(&higher).expect("valid");
        for (i, j, v) in after.entries() {
            prop_assert!(
                v <= base[(i, j)] + 1e-25,
                "C[{i},{j}] grew: {v:.3e} > {:.3e}", base[(i, j)]
            );
        }
    }

    #[test]
    fn linear_model_brackets_the_extraction(
        probs in prop::collection::vec(0.0f64..=1.0, 9),
    ) {
        // The linear model is exact at the endpoints and within a few
        // percent everywhere (the paper's regression claim).
        let ex = extractor();
        let model = LinearCapModel::fit(&ex).expect("fit");
        let exact = ex.extract(&probs).expect("valid");
        let approx = model.capacitance_at_probs(&probs);
        for (i, j, v) in exact.entries() {
            let rel = (approx[(i, j)] - v).abs() / v;
            prop_assert!(rel < 0.10, "C[{i},{j}] relative error {rel:.4}");
        }
    }

    #[test]
    fn probabilities_only_affect_their_via(
        probs in prop::collection::vec(0.1f64..=0.9, 9),
        via in 0usize..9,
    ) {
        let ex = extractor();
        let base = ex.extract(&probs).expect("valid");
        let mut changed = probs.clone();
        changed[via] = 1.0 - changed[via];
        let after = ex.extract(&changed).expect("valid");
        for (i, j, v) in after.entries() {
            if i != via && j != via {
                prop_assert!(
                    (v - base[(i, j)]).abs() < 1e-12 * v.abs().max(1e-30),
                    "unrelated entry ({i},{j}) moved"
                );
            }
        }
    }
}
