//! Closed-form bit-level statistics for mean-free Gaussian DSP signals —
//! the dual-bit-type (DBT) model of Landman & Rabaey (the paper's
//! Ref. \[18\]).
//!
//! The paper's Sec. 4 relies on exactly these facts: in a two's-
//! complement word carrying a zero-mean normal process, the low bits
//! behave as independent fair coins (`E{Δb²} = 1/2`, no correlation),
//! while the bits above the "sign breakpoint" are copies of the sign and
//! therefore switch *together* and *rarely* (for positive temporal
//! correlation). This module provides those statistics without any
//! sample data, so the systematic assignments — and even the optimal
//! one — can be computed at design time from `(σ, ρ)` alone.
//!
//! The sign-transition probability of a stationary AR(1) Gaussian
//! process with lag-1 correlation `ρ` is the classic orthant result
//! `P(sign flip) = arccos(ρ) / π`. Between the LSB region (below
//! `BP0 = log2 σ`) and the sign region (above `BP1 = log2(3σ)`) the
//! statistics are interpolated linearly in the bit index, following the
//! original DBT recipe.

use crate::{StatsError, SwitchingStats};
use tsv3d_matrix::Matrix;

/// Closed-form dual-bit-type statistics for a mean-free Gaussian signal
/// quantised to a two's-complement word.
///
/// # Examples
///
/// ```
/// use tsv3d_stats::dbt::DualBitTypeModel;
///
/// # fn main() -> Result<(), tsv3d_stats::StatsError> {
/// let model = DualBitTypeModel::new(16, 1000.0)?.with_correlation(0.6);
/// let stats = model.stats();
/// // LSBs are fair coins…
/// assert!((stats.self_switching(0) - 0.5).abs() < 1e-12);
/// // …sign bits switch with arccos(0.6)/π ≈ 0.295.
/// assert!((stats.self_switching(15) - 0.295).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DualBitTypeModel {
    width: usize,
    sigma: f64,
    rho: f64,
}

impl DualBitTypeModel {
    /// Creates the model for a `width`-bit word with standard deviation
    /// `sigma` (in LSBs) and no temporal correlation.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidWidth`] for unsupported widths; `sigma` must
    /// be positive (widths of quantised Gaussians below 1 LSB carry no
    /// signal).
    pub fn new(width: usize, sigma: f64) -> Result<Self, StatsError> {
        if width == 0 || width > 64 {
            return Err(StatsError::InvalidWidth { width });
        }
        Ok(Self {
            width,
            sigma: sigma.max(f64::MIN_POSITIVE),
            rho: 0.0,
        })
    }

    /// Sets the lag-1 temporal correlation `ρ ∈ [−1, 1]`.
    pub fn with_correlation(mut self, rho: f64) -> Self {
        self.rho = rho.clamp(-1.0, 1.0);
        self
    }

    /// Word width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The sign-bit transition probability `arccos(ρ) / π`.
    pub fn sign_switching(&self) -> f64 {
        self.rho.acos() / std::f64::consts::PI
    }

    /// The DBT breakpoints `(BP0, BP1)` in (fractional) bit positions:
    /// below `BP0 = log2 σ` bits are pure LSB type, above
    /// `BP1 = log2(3σ)` they are sign copies.
    pub fn breakpoints(&self) -> (f64, f64) {
        (self.sigma.log2(), (3.0 * self.sigma).log2())
    }

    /// The *sign-affinity* of bit `i`: 0 for pure LSB bits, 1 for sign
    /// copies, linear in between.
    pub fn sign_affinity(&self, i: usize) -> f64 {
        let (bp0, bp1) = self.breakpoints();
        let x = i as f64;
        if x <= bp0 {
            0.0
        } else if x >= bp1 {
            1.0
        } else {
            (x - bp0) / (bp1 - bp0)
        }
    }

    /// Materialises the full switching statistics.
    ///
    /// Self-switching interpolates between the LSB value 1/2 and the
    /// sign value `arccos(ρ)/π`; the coupling between bits `i` and `j`
    /// is `f_i · f_j · sign_switching` with the sign affinities `f`
    /// (sign copies toggle together; LSBs are uncorrelated); all bit
    /// probabilities are 1/2 (mean-free signal).
    pub fn stats(&self) -> SwitchingStats {
        let n = self.width;
        let t_sign = self.sign_switching();
        let ts: Vec<f64> = (0..n)
            .map(|i| {
                let f = self.sign_affinity(i);
                0.5 * (1.0 - f) + t_sign * f
            })
            .collect();
        let tc = Matrix::from_fn(n, |i, j| {
            if i == j {
                ts[i]
            } else {
                self.sign_affinity(i) * self.sign_affinity(j) * t_sign
            }
        });
        SwitchingStats::from_parts(ts, tc, vec![0.5; n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GaussianSource;

    #[test]
    fn uncorrelated_sign_switches_half_the_time() {
        let m = DualBitTypeModel::new(16, 500.0).unwrap();
        assert!((m.sign_switching() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn perfect_correlation_freezes_the_sign() {
        let m = DualBitTypeModel::new(16, 500.0).unwrap().with_correlation(1.0);
        assert!(m.sign_switching() < 1e-12);
        let m = DualBitTypeModel::new(16, 500.0).unwrap().with_correlation(-1.0);
        assert!((m.sign_switching() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn breakpoints_straddle_log2_sigma() {
        let m = DualBitTypeModel::new(16, 1024.0).unwrap();
        let (bp0, bp1) = m.breakpoints();
        assert!((bp0 - 10.0).abs() < 1e-12);
        assert!(bp1 > bp0 && bp1 < 12.0);
    }

    #[test]
    fn analytic_self_switching_matches_empirical() {
        // The headline validation: the closed form tracks the empirical
        // estimate across the word for several (σ, ρ).
        for &(sigma, rho) in &[(500.0, 0.0), (1000.0, 0.6), (2000.0, -0.4)] {
            let model = DualBitTypeModel::new(16, sigma).unwrap().with_correlation(rho);
            let analytic = model.stats();
            let stream = GaussianSource::new(16, sigma)
                .with_correlation(rho)
                .generate(31, 40_000)
                .unwrap();
            let empirical = SwitchingStats::from_stream(&stream);
            for bit in 0..16 {
                let a = analytic.self_switching(bit);
                let e = empirical.self_switching(bit);
                assert!(
                    (a - e).abs() < 0.12,
                    "σ={sigma} ρ={rho} bit {bit}: analytic {a:.3} vs empirical {e:.3}"
                );
            }
        }
    }

    #[test]
    fn analytic_sign_coupling_matches_empirical() {
        let sigma = 500.0;
        let model = DualBitTypeModel::new(16, sigma).unwrap().with_correlation(0.5);
        let analytic = model.stats();
        let stream = GaussianSource::new(16, sigma)
            .with_correlation(0.5)
            .generate(17, 40_000)
            .unwrap();
        let empirical = SwitchingStats::from_stream(&stream);
        // Two bits well above BP1 are sign copies in both worlds.
        let a = analytic.coupling_switching(14, 15);
        let e = empirical.coupling_switching(14, 15);
        assert!((a - e).abs() < 0.05, "analytic {a:.3} vs empirical {e:.3}");
        // And LSB pairs are uncorrelated in both.
        assert!(analytic.coupling_switching(0, 1).abs() < 1e-12);
        assert!(empirical.coupling_switching(0, 1).abs() < 0.05);
    }

    #[test]
    fn coupling_bounded_by_self_switching() {
        // |E{Δb_i Δb_j}| ≤ √(E{Δb_i²} E{Δb_j²}) must hold for a valid
        // second-moment structure.
        let model = DualBitTypeModel::new(16, 800.0).unwrap().with_correlation(0.3);
        let s = model.stats();
        for i in 0..16 {
            for j in 0..16 {
                let bound = (s.self_switching(i) * s.self_switching(j)).sqrt();
                assert!(
                    s.coupling_switching(i, j).abs() <= bound + 1e-12,
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn width_validated() {
        assert!(DualBitTypeModel::new(0, 10.0).is_err());
        assert!(DualBitTypeModel::new(65, 10.0).is_err());
    }
}
