//! Error type for stream construction and combination.

use std::error::Error;
use std::fmt;

/// Errors raised while constructing or combining [`BitStream`]s.
///
/// [`BitStream`]: crate::BitStream
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// Stream width must be between 1 and 64 bits.
    InvalidWidth {
        /// The requested width.
        width: usize,
    },
    /// A word does not fit into the stream width.
    WordTooWide {
        /// Index of the offending word.
        index: usize,
        /// The offending word.
        word: u64,
        /// The stream width.
        width: usize,
    },
    /// Streams combined word-by-word must share one width.
    WidthMismatch {
        /// Width of the first stream.
        first: usize,
        /// Width of the mismatching stream.
        other: usize,
    },
    /// At least one stream is required for a combination.
    NoStreams,
    /// A PGM image could not be decoded.
    PgmParse {
        /// Human-readable description of the malformed input.
        detail: String,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidWidth { width } => {
                write!(f, "stream width {width} is outside the supported range 1..=64")
            }
            StatsError::WordTooWide { index, word, width } => write!(
                f,
                "word {word:#x} at position {index} does not fit into {width} bits"
            ),
            StatsError::WidthMismatch { first, other } => write!(
                f,
                "cannot combine streams of different widths ({first} and {other})"
            ),
            StatsError::NoStreams => write!(f, "at least one stream is required"),
            StatsError::PgmParse { detail } => write!(f, "malformed PGM image: {detail}"),
        }
    }
}

impl Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        assert!(StatsError::InvalidWidth { width: 0 }.to_string().contains("width 0"));
        assert!(StatsError::NoStreams.to_string().contains("at least one"));
        let e = StatsError::WordTooWide { index: 7, word: 0x1ff, width: 8 };
        assert!(e.to_string().contains("position 7"));
        let e = StatsError::WidthMismatch { first: 8, other: 16 };
        assert!(e.to_string().contains("8 and 16"));
    }
}
