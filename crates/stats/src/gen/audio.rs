//! Audio-like DSP streams — the "important data type in SoCs" family
//! of the paper's Sec. 4, complementing the Gaussian model with a
//! structured, band-limited source.
//!
//! The signal is a sum of amplitude-modulated harmonics over a slowly
//! wandering fundamental (a voiced-speech/music caricature) plus a
//! noise floor: mean-free, strongly temporally correlated, with the
//! MSB sign-extension structure both systematic assignments feed on.

use crate::gen::{quantize_signed, standard_normal};
use crate::{BitStream, StatsError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An audio-like harmonic source quantised to two's complement.
///
/// # Examples
///
/// ```
/// use tsv3d_stats::gen::AudioSource;
/// use tsv3d_stats::SwitchingStats;
///
/// # fn main() -> Result<(), tsv3d_stats::StatsError> {
/// let src = AudioSource::new(16)?;
/// let stats = SwitchingStats::from_stream(&src.generate(1, 20_000)?);
/// // Band-limited ⇒ the sign bit switches rarely.
/// assert!(stats.self_switching(15) < 0.25);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AudioSource {
    width: usize,
    /// Peak amplitude as a fraction of full scale.
    amplitude: f64,
    /// Fundamental frequency as a fraction of the sample rate.
    fundamental: f64,
}

impl AudioSource {
    /// Creates a source with a 0.6 full-scale peak and a fundamental
    /// near 1/50 of the sample rate (≈ 880 Hz at 44.1 kHz).
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidWidth`] for unsupported widths.
    pub fn new(width: usize) -> Result<Self, StatsError> {
        if width == 0 || width > 64 {
            return Err(StatsError::InvalidWidth { width });
        }
        Ok(Self {
            width,
            amplitude: 0.6,
            fundamental: 0.02,
        })
    }

    /// Sets the peak amplitude (fraction of full scale, clamped to
    /// `[0, 1]`).
    pub fn with_amplitude(mut self, amplitude: f64) -> Self {
        self.amplitude = amplitude.clamp(0.0, 1.0);
        self
    }

    /// Sets the fundamental frequency as a fraction of the sample rate
    /// (clamped to `(0, 0.5)`).
    pub fn with_fundamental(mut self, f: f64) -> Self {
        self.fundamental = f.clamp(1e-6, 0.499);
        self
    }

    /// Word width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Generates `len` samples, deterministically for a given seed.
    ///
    /// # Errors
    ///
    /// Propagates stream-construction errors (none in practice).
    pub fn generate(&self, seed: u64, len: usize) -> Result<BitStream, StatsError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stream = BitStream::new(self.width)?;
        // Three harmonics with slowly wandering amplitudes and a pitch
        // drift; relative levels 1 : 0.5 : 0.25.
        let mut phase = rng.gen::<f64>() * std::f64::consts::TAU;
        let mut pitch = self.fundamental;
        let mut envelopes = [1.0f64, 0.5, 0.25];
        for _ in 0..len {
            pitch = (pitch + 1e-5 * standard_normal(&mut rng))
                .clamp(self.fundamental * 0.5, self.fundamental * 2.0);
            phase += std::f64::consts::TAU * pitch;
            for (k, e) in envelopes.iter_mut().enumerate() {
                let target = [1.0, 0.5, 0.25][k];
                *e = (*e + 0.002 * standard_normal(&mut rng)).clamp(0.2 * target, 2.0 * target);
            }
            let mut x = 0.0;
            for (k, &e) in envelopes.iter().enumerate() {
                x += e * ((k + 1) as f64 * phase).sin();
            }
            // Normalise the 1.75-peak harmonic stack and add a floor.
            let sample =
                self.amplitude * x / 1.75 + 0.002 * standard_normal(&mut rng);
            stream.push(quantize_signed(sample.clamp(-1.0, 1.0), self.width))?;
        }
        Ok(stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SwitchingStats;

    #[test]
    fn signal_is_mean_free_and_band_limited() {
        let s = AudioSource::new(16).unwrap().generate(3, 30_000).unwrap();
        let stats = SwitchingStats::from_stream(&s);
        // Sign bit balanced and slow.
        assert!((stats.bit_probability(15) - 0.5).abs() < 0.1);
        assert!(stats.self_switching(15) < 0.25);
        // LSB is effectively random.
        assert!((stats.self_switching(0) - 0.5).abs() < 0.1);
    }

    #[test]
    fn msbs_are_spatially_correlated() {
        let s = AudioSource::new(16).unwrap().generate(7, 30_000).unwrap();
        let stats = SwitchingStats::from_stream(&s);
        // Sign extension makes bits 15 and 14 toggle together: the
        // sign bit is active, and its coupling with bit 14 is positive
        // and captures essentially all of that activity.
        assert!(stats.self_switching(15) > 0.02);
        assert!(stats.coupling_switching(15, 14) > 0.9 * stats.self_switching(15));
    }

    #[test]
    fn amplitude_controls_msb_activity() {
        let quiet = AudioSource::new(16).unwrap().with_amplitude(0.05);
        let loud = AudioSource::new(16).unwrap().with_amplitude(0.9);
        let act = |src: &AudioSource| {
            let s = src.generate(5, 20_000).unwrap();
            SwitchingStats::from_stream(&s).self_switching(13)
        };
        assert!(act(&quiet) < act(&loud));
    }

    #[test]
    fn deterministic_and_validated() {
        let src = AudioSource::new(12).unwrap();
        assert_eq!(src.generate(9, 200).unwrap(), src.generate(9, 200).unwrap());
        assert!(AudioSource::new(0).is_err());
        assert!(AudioSource::new(65).is_err());
        assert_eq!(AudioSource::new(8).unwrap().with_amplitude(5.0).amplitude, 1.0);
    }
}
