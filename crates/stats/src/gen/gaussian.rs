//! Gaussian (normally distributed) DSP pattern source with optional
//! temporal correlation — the workload of the paper's Fig. 3.

use crate::gen::{quantize_signed, standard_normal};
use crate::{BitStream, StatsError};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Source of `width`-bit two's-complement words sampled from a Gaussian
/// process.
///
/// The process is a first-order autoregression
/// `x_t = ρ·x_{t−1} + √(1−ρ²)·w_t` with `w_t ~ N(0, σ²)`, so the
/// marginal distribution is `N(mean, σ²)` for every lag-1 correlation
/// `ρ ∈ (−1, 1)`. With `ρ = 0` the samples are temporally uncorrelated
/// (Fig. 3.a); negative and positive `ρ` reproduce Figs. 3.b–3.e.
///
/// `sigma` and `mean` are expressed in LSBs of the quantised word, as in
/// the paper's σ axis.
///
/// # Examples
///
/// ```
/// use tsv3d_stats::gen::GaussianSource;
/// use tsv3d_stats::SwitchingStats;
///
/// # fn main() -> Result<(), tsv3d_stats::StatsError> {
/// let src = GaussianSource::new(16, 1000.0);
/// let stream = src.generate(7, 4000)?;
/// let stats = SwitchingStats::from_stream(&stream);
/// // LSBs of a Gaussian signal are effectively random: E{Δb²} ≈ 1/2.
/// assert!((stats.self_switching(0) - 0.5).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianSource {
    /// Word width in bits (two's complement).
    pub width: usize,
    /// Standard deviation of the marginal distribution, in LSBs.
    pub sigma: f64,
    /// Mean of the marginal distribution, in LSBs.
    pub mean: f64,
    /// Lag-1 temporal correlation coefficient `ρ ∈ (−1, 1)`.
    pub rho: f64,
}

impl GaussianSource {
    /// A mean-free, temporally uncorrelated source.
    pub fn new(width: usize, sigma: f64) -> Self {
        Self {
            width,
            sigma,
            mean: 0.0,
            rho: 0.0,
        }
    }

    /// Sets the lag-1 temporal correlation.
    pub fn with_correlation(mut self, rho: f64) -> Self {
        self.rho = rho;
        self
    }

    /// Sets the marginal mean (in LSBs).
    pub fn with_mean(mut self, mean: f64) -> Self {
        self.mean = mean;
        self
    }

    /// Generates `len` quantised words, deterministically for a given
    /// seed.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidWidth`] for unsupported widths.
    pub fn generate(&self, seed: u64, len: usize) -> Result<BitStream, StatsError> {
        if self.width == 0 || self.width > 64 {
            return Err(StatsError::InvalidWidth { width: self.width });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let full_scale = ((1u128 << (self.width - 1)) - 1) as f64;
        let innovation = (1.0 - self.rho * self.rho).max(0.0).sqrt();
        let mut stream = BitStream::new(self.width)?;
        let mut x = standard_normal(&mut rng);
        for _ in 0..len {
            let value = self.mean + self.sigma * x;
            stream.push(quantize_signed(value / full_scale, self.width))?;
            x = self.rho * x + innovation * standard_normal(&mut rng);
        }
        Ok(stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SwitchingStats;

    fn signed_value(word: u64, width: usize) -> i64 {
        let shift = 64 - width;
        ((word << shift) as i64) >> shift
    }

    #[test]
    fn marginal_moments_match_parameters() {
        let src = GaussianSource::new(16, 500.0).with_mean(200.0);
        let s = src.generate(3, 30_000).unwrap();
        let vals: Vec<f64> = s.iter().map(|w| signed_value(w, 16) as f64).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
        assert!((mean - 200.0).abs() < 15.0, "mean = {mean}");
        assert!((var.sqrt() - 500.0).abs() < 15.0, "sigma = {}", var.sqrt());
    }

    #[test]
    fn correlation_matches_rho() {
        for &rho in &[-0.6, 0.0, 0.7] {
            let src = GaussianSource::new(16, 3000.0).with_correlation(rho);
            let s = src.generate(11, 30_000).unwrap();
            let vals: Vec<f64> = s.iter().map(|w| signed_value(w, 16) as f64).collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
            let cov = vals
                .windows(2)
                .map(|w| (w[0] - mean) * (w[1] - mean))
                .sum::<f64>()
                / (vals.len() - 1) as f64;
            let got = cov / var;
            assert!((got - rho).abs() < 0.05, "rho = {rho}: got {got}");
        }
    }

    #[test]
    fn msbs_of_small_sigma_signal_rarely_switch() {
        // With σ ≪ full scale, the MSBs mirror the (rarely changing) sign
        // and switch much less than the LSBs.
        let src = GaussianSource::new(16, 100.0).with_correlation(0.9);
        let stats = SwitchingStats::from_stream(&src.generate(5, 20_000).unwrap());
        assert!(stats.self_switching(15) < 0.3);
        assert!((stats.self_switching(0) - 0.5).abs() < 0.05);
    }

    #[test]
    fn msb_pairs_strongly_correlated_for_mean_free_signal() {
        // Paper Sec. 4: sign extension makes MSB pairs strongly
        // positively correlated for zero-mean normal data.
        let src = GaussianSource::new(16, 1000.0);
        let stats = SwitchingStats::from_stream(&src.generate(9, 20_000).unwrap());
        assert!(stats.coupling_switching(15, 14) > 0.3);
        // LSB pairs are essentially uncorrelated.
        assert!(stats.coupling_switching(0, 1).abs() < 0.05);
    }

    #[test]
    fn bit_probabilities_balanced_for_mean_free_signal() {
        let src = GaussianSource::new(16, 2000.0);
        let stats = SwitchingStats::from_stream(&src.generate(13, 20_000).unwrap());
        for i in 0..16 {
            assert!(
                (stats.bit_probability(i) - 0.5).abs() < 0.05,
                "bit {i}: {}",
                stats.bit_probability(i)
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let src = GaussianSource::new(12, 300.0).with_correlation(0.5);
        assert_eq!(src.generate(1, 100).unwrap(), src.generate(1, 100).unwrap());
        assert_ne!(src.generate(1, 100).unwrap(), src.generate(2, 100).unwrap());
    }

    #[test]
    fn rejects_invalid_width() {
        assert!(GaussianSource::new(0, 1.0).generate(0, 10).is_err());
        assert!(GaussianSource::new(65, 1.0).generate(0, 10).is_err());
    }
}
