//! Synthetic image-sensor workloads — the VSoC streams of Sec. 5.1.
//!
//! The paper uses real pictures "of cars, people and landscapes" read out
//! through a Bayer colour-filter array. What the assignment exploits is
//! the *strong correlation of adjacent pixels*, which turns into temporal
//! pattern correlation of the raster-scanned TSV stream. This module
//! substitutes the photographs with synthetic scenes that have the same
//! property: smooth 2-D random fields (filtered noise) with
//! scene-dependent structure, tunable spatial correlation and the full
//! Bayer readout pipeline (parallel, multiplexed and grayscale modes).

use crate::gen::{quantize_unsigned, standard_normal, GrayFrame};
use crate::{BitStream, StatsError};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Scene family mimicking the paper's picture classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SceneKind {
    /// Smooth gradients with a bright upper half (sky over ground).
    Landscape,
    /// A bright central blob over a darker background (people).
    Portrait,
    /// Blocky piecewise-constant regions (cars, buildings).
    Urban,
}

/// A synthetic Bayer-pattern RGB image sensor.
///
/// Pixels are generated scene by scene; each 2×2 Bayer cell yields one
/// red, two green and one blue 8-bit sample. The three readout modes of
/// Sec. 5.1 are provided:
///
/// * [`rgb_parallel_stream`](ImageSensor::rgb_parallel_stream) — all four
///   colour components of a cell in one 32-bit word per cycle;
/// * [`rgb_mux_stream`](ImageSensor::rgb_mux_stream) — the components one
///   after another over an 8-bit bundle (pixel correlation is lost, as
///   the paper observes);
/// * [`grayscale_stream`](ImageSensor::grayscale_stream) — one 8-bit luma
///   value per cell.
///
/// # Examples
///
/// ```
/// use tsv3d_stats::gen::ImageSensor;
///
/// # fn main() -> Result<(), tsv3d_stats::StatsError> {
/// let sensor = ImageSensor::new(32, 24);
/// let s = sensor.rgb_parallel_stream(42)?;
/// assert_eq!(s.width(), 32);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ImageSensor {
    width: usize,
    height: usize,
    scenes: Vec<SceneKind>,
    smoothing: usize,
    /// User-supplied luminance frames replacing the synthetic scenes
    /// (resampled to the sensor resolution).
    custom: Option<Vec<GrayFrame>>,
}

impl ImageSensor {
    /// Creates a sensor of `width × height` pixels (rounded down to even
    /// numbers for the Bayer grid) capturing one scene of each kind.
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            width: (width & !1).max(2),
            height: (height & !1).max(2),
            scenes: vec![SceneKind::Landscape, SceneKind::Portrait, SceneKind::Urban],
            smoothing: 6,
            custom: None,
        }
    }

    /// Replaces the captured scene list.
    pub fn with_scenes(mut self, scenes: Vec<SceneKind>) -> Self {
        self.scenes = scenes;
        self
    }

    /// Sets the number of blur passes controlling the pixel correlation
    /// length.
    pub fn with_smoothing(mut self, passes: usize) -> Self {
        self.smoothing = passes;
        self
    }

    /// Replaces the synthetic scenes with user-supplied luminance frames
    /// (e.g. decoded from PGM via [`GrayFrame::from_pgm`]); each frame
    /// is resampled to the sensor resolution and treated as grayscale
    /// (all three colour planes follow the supplied luminance).
    pub fn with_custom_frames(mut self, frames: Vec<GrayFrame>) -> Self {
        self.custom = Some(frames);
        self
    }

    /// Sensor width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Sensor height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Generates the luminance field of one frame, row-major, in
    /// `[0, 1]`: the custom frame if one was supplied, a synthetic
    /// scene otherwise.
    fn frame_luma(&self, kind: SceneKind, seed: u64, frame: usize) -> Vec<f64> {
        if let Some(frames) = &self.custom {
            if !frames.is_empty() {
                return frames[frame % frames.len()]
                    .resampled(self.width, self.height)
                    .expect("sensor dimensions are non-zero")
                    .luma()
                    .to_vec();
            }
        }
        self.luminance_field(kind, seed)
    }

    /// Generates a synthetic luminance field, row-major, in `[0, 1]`.
    fn luminance_field(&self, kind: SceneKind, seed: u64) -> Vec<f64> {
        let (w, h) = (self.width, self.height);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut field: Vec<f64> = (0..w * h).map(|_| standard_normal(&mut rng)).collect();

        // Separable box blur to create spatial correlation.
        for _ in 0..self.smoothing {
            let mut next = field.clone();
            for y in 0..h {
                for x in 0..w {
                    let xm = x.saturating_sub(1);
                    let xp = (x + 1).min(w - 1);
                    next[y * w + x] = (field[y * w + xm] + field[y * w + x] + field[y * w + xp]) / 3.0;
                }
            }
            field = next.clone();
            for y in 0..h {
                for x in 0..w {
                    let ym = y.saturating_sub(1);
                    let yp = (y + 1).min(h - 1);
                    next[y * w + x] = (field[ym * w + x] + field[y * w + x] + field[yp * w + x]) / 3.0;
                }
            }
            field = next;
        }

        // Normalise the texture to roughly ±0.5.
        let max_abs = field.iter().fold(1e-9f64, |m, v| m.max(v.abs()));
        for v in field.iter_mut() {
            *v = *v / max_abs * 0.5;
        }

        // Scene structure.
        for y in 0..h {
            for x in 0..w {
                let fx = x as f64 / (w - 1).max(1) as f64;
                let fy = y as f64 / (h - 1).max(1) as f64;
                let structure = match kind {
                    SceneKind::Landscape => 0.9 - 0.6 * fy + 0.1 * (fx * 6.0).sin(),
                    SceneKind::Portrait => {
                        let dx = fx - 0.5;
                        let dy = fy - 0.45;
                        0.3 + 0.6 * (-(dx * dx + dy * dy) * 12.0).exp()
                    }
                    SceneKind::Urban => {
                        // Deterministic blocky brightness per 8×8 block.
                        let bx = x / 8;
                        let by = y / 8;
                        let hash = bx.wrapping_mul(2654435761).wrapping_add(by.wrapping_mul(40503))
                            ^ seed as usize;
                        0.25 + 0.5 * ((hash >> 3) % 97) as f64 / 96.0
                    }
                };
                // Combine structure and texture, then stretch the
                // contrast so the pixel histogram spans the full range
                // like a typical photograph.
                let v = structure + field[y * w + x] * 0.45;
                field[y * w + x] = ((v - 0.5) * 1.2 + 0.5).clamp(0.0, 1.0);
            }
        }
        field
    }

    /// Full-colour planes of one scene: `(r, g, b)` row-major in `[0, 1]`.
    ///
    /// Chroma is strong: real Bayer colour components differ markedly
    /// from each other even where luminance is smooth, which is exactly
    /// why multiplexing the components destroys the temporal correlation
    /// (Sec. 5.1). Each plane stays *spatially* smooth, so same-colour
    /// samples of adjacent cells remain correlated.
    fn color_planes(&self, kind: SceneKind, seed: u64, frame: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let luma = self.frame_luma(kind, seed, frame);
        // Custom frames are grayscale: all three colour planes follow
        // the supplied luminance.
        if self.custom.as_ref().is_some_and(|f| !f.is_empty()) {
            return (luma.clone(), luma.clone(), luma);
        }
        // Synthetic scenes get independent smooth chroma fields.
        let chroma_u = self.luminance_field(kind, seed ^ 0x9E37_79B9_7F4A_7C15);
        let chroma_v = self.luminance_field(kind, seed ^ 0xD1B5_4A32_D192_ED03);
        let n = luma.len();
        let mut r = Vec::with_capacity(n);
        let mut g = Vec::with_capacity(n);
        let mut b = Vec::with_capacity(n);
        for i in 0..n {
            r.push((0.25 * luma[i] + 0.75 * chroma_u[i]).clamp(0.0, 1.0));
            g.push(luma[i]);
            b.push((0.25 * luma[i] + 0.75 * chroma_v[i]).clamp(0.0, 1.0));
        }
        (r, g, b)
    }

    /// 8-bit Bayer samples of one scene, one `(R, G1, G2, B)` tuple per
    /// 2×2 cell in raster order.
    fn bayer_cells(&self, kind: SceneKind, seed: u64, frame: usize) -> Vec<(u8, u8, u8, u8)> {
        let (r, g, b) = self.color_planes(kind, seed, frame);
        let w = self.width;
        let mut cells = Vec::with_capacity((self.height / 2) * (w / 2));
        for cy in 0..self.height / 2 {
            for cx in 0..w / 2 {
                let (y0, x0) = (2 * cy, 2 * cx);
                let rv = quantize_unsigned(r[y0 * w + x0], 8) as u8;
                let g1 = quantize_unsigned(g[y0 * w + x0 + 1], 8) as u8;
                let g2 = quantize_unsigned(g[(y0 + 1) * w + x0], 8) as u8;
                let bv = quantize_unsigned(b[(y0 + 1) * w + x0 + 1], 8) as u8;
                cells.push((rv, g1, g2, bv));
            }
        }
        cells
    }

    /// All scenes' (or custom frames') Bayer cells concatenated in
    /// capture order.
    fn all_cells(&self, seed: u64) -> Vec<(u8, u8, u8, u8)> {
        let mut cells = Vec::new();
        let frame_count = self
            .custom
            .as_ref()
            .map_or(self.scenes.len(), |f| f.len().max(1));
        for k in 0..frame_count {
            let scene = self.scenes[k % self.scenes.len()];
            cells.extend(self.bayer_cells(scene, seed.wrapping_add(k as u64 * 7919), k));
        }
        cells
    }

    /// 32-bit stream transmitting all four colour components of each
    /// Bayer cell in parallel (`R` in bits 0–7, `G1` 8–15, `G2` 16–23,
    /// `B` 24–31).
    ///
    /// # Errors
    ///
    /// Propagates stream-construction errors (none in practice).
    pub fn rgb_parallel_stream(&self, seed: u64) -> Result<BitStream, StatsError> {
        let mut s = BitStream::new(32)?;
        for (r, g1, g2, b) in self.all_cells(seed) {
            let word = r as u64 | (g1 as u64) << 8 | (g2 as u64) << 16 | (b as u64) << 24;
            s.push(word)?;
        }
        Ok(s)
    }

    /// 8-bit stream transmitting the colour components one after another
    /// (`R, G1, G2, B, R, …`) — the "RGB Mux." mode in which the pixel
    /// correlation is lost.
    ///
    /// # Errors
    ///
    /// Propagates stream-construction errors (none in practice).
    pub fn rgb_mux_stream(&self, seed: u64) -> Result<BitStream, StatsError> {
        let mut s = BitStream::new(8)?;
        for (r, g1, g2, b) in self.all_cells(seed) {
            s.push(r as u64)?;
            s.push(g1 as u64)?;
            s.push(g2 as u64)?;
            s.push(b as u64)?;
        }
        Ok(s)
    }

    /// 8-bit grayscale stream (cell luma, ITU-style weights over the
    /// Bayer components).
    ///
    /// # Errors
    ///
    /// Propagates stream-construction errors (none in practice).
    pub fn grayscale_stream(&self, seed: u64) -> Result<BitStream, StatsError> {
        let mut s = BitStream::new(8)?;
        for (r, g1, g2, b) in self.all_cells(seed) {
            let luma = 0.299 * r as f64 + 0.587 * (g1 as f64 + g2 as f64) / 2.0 + 0.114 * b as f64;
            s.push(luma.round().clamp(0.0, 255.0) as u64)?;
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SwitchingStats;

    fn sensor() -> ImageSensor {
        ImageSensor::new(48, 32)
    }

    #[test]
    fn stream_lengths_match_cell_counts() {
        let s = sensor();
        let cells_per_scene = (48 / 2) * (32 / 2);
        assert_eq!(s.rgb_parallel_stream(1).unwrap().len(), 3 * cells_per_scene);
        assert_eq!(s.rgb_mux_stream(1).unwrap().len(), 3 * cells_per_scene * 4);
        assert_eq!(s.grayscale_stream(1).unwrap().len(), 3 * cells_per_scene);
    }

    #[test]
    fn odd_dimensions_round_down() {
        let s = ImageSensor::new(33, 25);
        assert_eq!(s.width(), 32);
        assert_eq!(s.height(), 24);
    }

    #[test]
    fn adjacent_cells_are_correlated() {
        // The premise of Sec. 5.1: raster-scanned pixels are temporally
        // correlated, so the MSBs of the parallel stream switch rarely.
        let stats = SwitchingStats::from_stream(&sensor().rgb_parallel_stream(7).unwrap());
        // MSB of the red channel (bit 7).
        assert!(
            stats.self_switching(7) < 0.35,
            "red MSB switches {}",
            stats.self_switching(7)
        );
        // And much less than the red LSB.
        assert!(stats.self_switching(7) < stats.self_switching(0));
    }

    #[test]
    fn multiplexing_destroys_temporal_correlation() {
        // Paper Sec. 5.1: "due to the multiplexing, the pixel correlation
        // is lost". The muxed stream's MSB switches far more than the
        // parallel stream's.
        let s = sensor();
        let par = SwitchingStats::from_stream(&s.rgb_parallel_stream(7).unwrap());
        let mux = SwitchingStats::from_stream(&s.rgb_mux_stream(7).unwrap());
        assert!(mux.self_switching(7) > 1.5 * par.self_switching(7));
    }

    #[test]
    fn pixel_values_span_a_reasonable_range() {
        let s = sensor().grayscale_stream(3).unwrap();
        let max = s.iter().max().unwrap();
        let min = s.iter().min().unwrap();
        assert!(max > 150, "max = {max}");
        assert!(min < 120, "min = {min}");
    }

    #[test]
    fn deterministic_per_seed() {
        let s = sensor();
        assert_eq!(s.rgb_mux_stream(5).unwrap(), s.rgb_mux_stream(5).unwrap());
        assert_ne!(s.rgb_mux_stream(5).unwrap(), s.rgb_mux_stream(6).unwrap());
    }

    #[test]
    fn scene_kinds_produce_distinct_content() {
        let base = ImageSensor::new(32, 32);
        let a = base
            .clone()
            .with_scenes(vec![SceneKind::Landscape])
            .grayscale_stream(1)
            .unwrap();
        let b = base
            .with_scenes(vec![SceneKind::Urban])
            .grayscale_stream(1)
            .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn green_channels_of_a_cell_are_similar() {
        // Both greens sample the same smooth luma field one pixel apart,
        // so they should rarely differ by much.
        let s = sensor().rgb_parallel_stream(11).unwrap();
        let mut close = 0usize;
        for w in s.iter() {
            let g1 = (w >> 8) & 0xFF;
            let g2 = (w >> 16) & 0xFF;
            if (g1 as i64 - g2 as i64).abs() < 32 {
                close += 1;
            }
        }
        assert!(close as f64 / s.len() as f64 > 0.9);
    }
}

#[cfg(test)]
mod custom_frame_tests {
    use super::*;
    use crate::gen::GrayFrame;
    use crate::SwitchingStats;

    #[test]
    fn custom_frames_drive_the_grayscale_stream() {
        // A constant mid-gray frame must dominate the luma (chroma and
        // texture are absent from the gray pipeline).
        let frame = GrayFrame::from_luma(8, 8, vec![0.5; 64]).unwrap();
        let sensor = ImageSensor::new(8, 8).with_custom_frames(vec![frame]);
        let s = sensor.grayscale_stream(1).unwrap();
        assert_eq!(s.len(), 16); // one frame of 4x4 cells
        for w in s.iter() {
            assert!((w as i64 - 128).abs() <= 1, "gray value {w}");
        }
    }

    #[test]
    fn custom_frames_cycle_when_fewer_than_scenes() {
        let bright = GrayFrame::from_luma(4, 4, vec![1.0; 16]).unwrap();
        let dark = GrayFrame::from_luma(4, 4, vec![0.0; 16]).unwrap();
        let sensor = ImageSensor::new(8, 8).with_custom_frames(vec![bright, dark]);
        let s = sensor.grayscale_stream(1).unwrap();
        // Two frames of 16 cells each.
        assert_eq!(s.len(), 32);
        let first_frame_mean: f64 =
            s.iter().take(16).map(|w| w as f64).sum::<f64>() / 16.0;
        let second_frame_mean: f64 =
            s.iter().skip(16).map(|w| w as f64).sum::<f64>() / 16.0;
        assert!(first_frame_mean > 200.0 && second_frame_mean < 55.0);
    }

    #[test]
    fn pgm_frame_retains_spatial_correlation() {
        // A smooth gradient PGM keeps the MSBs of the parallel stream
        // quiet, like the synthetic scenes do.
        let mut pgm = String::from("P2\n32 32\n255\n");
        for y in 0..32 {
            for x in 0..32 {
                pgm.push_str(&format!("{} ", (x + y) * 4));
            }
            pgm.push('\n');
        }
        let frame = GrayFrame::from_pgm(pgm.as_bytes()).unwrap();
        let sensor = ImageSensor::new(32, 32).with_custom_frames(vec![frame]);
        let stats = SwitchingStats::from_stream(&sensor.rgb_parallel_stream(3).unwrap());
        // Green MSB (bit 15) tracks the smooth luma.
        assert!(stats.self_switching(15) < 0.3, "{}", stats.self_switching(15));
    }
}
