//! Synthetic MEMS sensor workloads — the smartphone traces of Sec. 5.2.
//!
//! The paper records a magnetometer, an accelerometer and a gyroscope
//! (three axes each, 16-bit) "in various daily use scenarios". The
//! properties the assignment exploits are: per-axis signals are
//! approximately normally distributed around a slowly varying operating
//! point and temporally correlated; interleaving the axes destroys the
//! temporal correlation but preserves the distribution; RMS streams are
//! unsigned (not mean-free) and spatially correlated. The synthetic
//! models below reproduce exactly these properties: slow orientation
//! random walks, burst-gated motion noise and additive sensor noise.

use crate::gen::{quantize_signed, quantize_unsigned, standard_normal};
use crate::{BitStream, StatsError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The three smartphone sensor types of Sec. 5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SensorKind {
    /// Gravity projection plus motion bursts.
    Accelerometer,
    /// Near-zero baseline with rotation bursts.
    Gyroscope,
    /// Slowly rotating earth-field projection.
    Magnetometer,
}

/// A three-axis, 16-bit MEMS sensor trace generator.
///
/// # Examples
///
/// ```
/// use tsv3d_stats::gen::{MemsSensor, SensorKind};
///
/// # fn main() -> Result<(), tsv3d_stats::StatsError> {
/// let gyro = MemsSensor::new(SensorKind::Gyroscope);
/// let xyz = gyro.xyz_stream(3)?;
/// assert_eq!(xyz.width(), 16);
/// assert_eq!(xyz.len(), 3 * gyro.samples());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemsSensor {
    kind: SensorKind,
    samples: usize,
}

/// Word width of every MEMS stream (paper Sec. 5.2: 16-bit resolution).
pub const MEMS_WIDTH: usize = 16;

impl MemsSensor {
    /// Creates a generator with the paper's per-sensor block length of
    /// 3 900 samples (Sec. 7).
    pub fn new(kind: SensorKind) -> Self {
        Self {
            kind,
            samples: 3_900,
        }
    }

    /// Overrides the number of samples per axis.
    pub fn with_samples(mut self, samples: usize) -> Self {
        self.samples = samples;
        self
    }

    /// The sensor type.
    pub fn kind(&self) -> SensorKind {
        self.kind
    }

    /// Samples per axis.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Generates the three axis traces in physical units normalised to
    /// `[-1, 1]` full scale.
    pub fn axes(&self, seed: u64) -> [Vec<f64>; 3] {
        let mut rng = StdRng::seed_from_u64(seed ^ (self.kind as u64) << 32);
        let n = self.samples;
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        let mut z = Vec::with_capacity(n);

        // Slow orientation random walk shared by all sensors.
        let mut theta: f64 = rng.gen::<f64>() * std::f64::consts::TAU;
        let mut phi: f64 = rng.gen::<f64>() * std::f64::consts::PI;
        // Burst gate (random telegraph) and band-limited burst noise.
        let mut burst_on = false;
        let mut bx = 0.0f64;
        let mut by = 0.0f64;
        let mut bz = 0.0f64;

        for _ in 0..n {
            theta += 0.01 * standard_normal(&mut rng);
            phi += 0.006 * standard_normal(&mut rng);
            if rng.gen::<f64>() < 0.01 {
                burst_on = !burst_on;
            }
            let burst_sigma = if burst_on { 0.12 } else { 0.01 };
            bx = 0.9 * bx + burst_sigma * standard_normal(&mut rng);
            by = 0.9 * by + burst_sigma * standard_normal(&mut rng);
            bz = 0.9 * bz + burst_sigma * standard_normal(&mut rng);

            let (sx, sy, sz) = match self.kind {
                SensorKind::Accelerometer => {
                    // Gravity projection (≈0.5 full scale for ±2 g range)
                    // plus motion bursts and sensor noise.
                    let gx = 0.5 * phi.sin() * theta.cos();
                    let gy = 0.5 * phi.sin() * theta.sin();
                    let gz = 0.5 * phi.cos();
                    (gx + bx, gy + by, gz + bz)
                }
                SensorKind::Gyroscope => {
                    // Rotation rate on a ±2000 °/s full scale: everyday
                    // motion peaks at tens of °/s, a few percent of FS.
                    (0.4 * bx, 0.4 * by, 0.3 * bz)
                }
                SensorKind::Magnetometer => {
                    // Earth field (≈50 µT) on a ±4900 µT full scale is
                    // only ≈1 % of FS, rotating with the orientation.
                    let mx = 0.05 * phi.cos() * theta.cos();
                    let my = 0.05 * phi.cos() * theta.sin();
                    let mz = 0.05 * phi.sin();
                    (mx + 0.01 * bx, my + 0.01 * by, mz + 0.01 * bz)
                }
            };
            let noise = match self.kind {
                SensorKind::Magnetometer => 0.001,
                _ => 0.004,
            };
            x.push((sx + noise * standard_normal(&mut rng)).clamp(-1.0, 1.0));
            y.push((sy + noise * standard_normal(&mut rng)).clamp(-1.0, 1.0));
            z.push((sz + noise * standard_normal(&mut rng)).clamp(-1.0, 1.0));
        }
        [x, y, z]
    }

    /// 16-bit stream of a single axis (0 = x, 1 = y, 2 = z).
    ///
    /// # Errors
    ///
    /// Propagates stream-construction errors (none in practice).
    ///
    /// # Panics
    ///
    /// Panics if `axis > 2`.
    pub fn axis_stream(&self, axis: usize, seed: u64) -> Result<BitStream, StatsError> {
        assert!(axis < 3, "axis index {axis} out of range");
        let axes = self.axes(seed);
        let mut s = BitStream::new(MEMS_WIDTH)?;
        for &v in &axes[axis] {
            s.push(quantize_signed(v, MEMS_WIDTH))?;
        }
        Ok(s)
    }

    /// 16-bit stream with the x, y and z samples regularly interleaved
    /// ("XYZ" in Fig. 5) — the interleaving destroys temporal correlation
    /// while keeping the near-normal distribution.
    ///
    /// # Errors
    ///
    /// Propagates stream-construction errors (none in practice).
    pub fn xyz_stream(&self, seed: u64) -> Result<BitStream, StatsError> {
        let axes = self.axes(seed);
        let mut s = BitStream::new(MEMS_WIDTH)?;
        for t in 0..self.samples {
            for axis in &axes {
                s.push(quantize_signed(axis[t], MEMS_WIDTH))?;
            }
        }
        Ok(s)
    }

    /// 16-bit unsigned stream of the per-sample RMS magnitude
    /// `√(x² + y² + z²)` ("RMS" in Fig. 5) — unsigned, not mean-free,
    /// temporally correlated.
    ///
    /// # Errors
    ///
    /// Propagates stream-construction errors (none in practice).
    pub fn rms_stream(&self, seed: u64) -> Result<BitStream, StatsError> {
        let [x, y, z] = self.axes(seed);
        let mut s = BitStream::new(MEMS_WIDTH)?;
        let full = 3f64.sqrt();
        for t in 0..self.samples {
            let rms = (x[t] * x[t] + y[t] * y[t] + z[t] * z[t]).sqrt() / full;
            s.push(quantize_unsigned(rms, MEMS_WIDTH))?;
        }
        Ok(s)
    }
}

/// Pattern-by-pattern multiplex of several sensors' XYZ-interleaved
/// streams over one TSV array ("All Mux." in Fig. 5).
///
/// # Errors
///
/// [`StatsError::NoStreams`] for an empty sensor list; otherwise
/// propagates stream errors.
pub fn all_sensors_mux(sensors: &[MemsSensor], seed: u64) -> Result<BitStream, StatsError> {
    if sensors.is_empty() {
        return Err(StatsError::NoStreams);
    }
    let streams: Vec<BitStream> = sensors
        .iter()
        .enumerate()
        .map(|(k, s)| s.xyz_stream(seed.wrapping_add(k as u64 * 104_729)))
        .collect::<Result<_, _>>()?;
    let refs: Vec<&BitStream> = streams.iter().collect();
    BitStream::multiplex(&refs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SwitchingStats;

    fn signed_value(word: u64) -> i64 {
        ((word << 48) as i64) >> 48
    }

    #[test]
    fn default_block_length_matches_paper() {
        assert_eq!(MemsSensor::new(SensorKind::Gyroscope).samples(), 3_900);
    }

    #[test]
    fn axis_streams_are_temporally_correlated() {
        let s = MemsSensor::new(SensorKind::Accelerometer)
            .with_samples(8000)
            .axis_stream(0, 5)
            .unwrap();
        let stats = SwitchingStats::from_stream(&s);
        // MSB (sign + slow gravity) switches rarely.
        assert!(stats.self_switching(15) < 0.2, "{}", stats.self_switching(15));
    }

    #[test]
    fn interleaving_reduces_temporal_correlation() {
        let sensor = MemsSensor::new(SensorKind::Accelerometer).with_samples(6000);
        let single = SwitchingStats::from_stream(&sensor.axis_stream(0, 5).unwrap());
        let xyz = SwitchingStats::from_stream(&sensor.xyz_stream(5).unwrap());
        // High-order data bits switch much more often once axes are mixed.
        assert!(xyz.self_switching(13) > 2.0 * single.self_switching(13).max(0.01));
    }

    #[test]
    fn gyroscope_is_near_zero_mean() {
        let s = MemsSensor::new(SensorKind::Gyroscope)
            .with_samples(6000)
            .axis_stream(1, 9)
            .unwrap();
        let mean: f64 =
            s.iter().map(|w| signed_value(w) as f64).sum::<f64>() / s.len() as f64 / 32767.0;
        assert!(mean.abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn rms_stream_is_unsigned_and_biased() {
        // Sec. 5.2: RMS patterns are unsigned (no zero mean), so the MSB
        // probability is far from 1/2 for gravity-dominated sensors.
        let s = MemsSensor::new(SensorKind::Accelerometer)
            .with_samples(6000)
            .rms_stream(2)
            .unwrap();
        let stats = SwitchingStats::from_stream(&s);
        // All values non-negative by construction; top bit biased.
        assert!((stats.bit_probability(15) - 0.5).abs() > 0.2);
    }

    #[test]
    fn all_mux_interleaves_three_sensors() {
        let sensors = [
            MemsSensor::new(SensorKind::Magnetometer).with_samples(100),
            MemsSensor::new(SensorKind::Accelerometer).with_samples(100),
            MemsSensor::new(SensorKind::Gyroscope).with_samples(100),
        ];
        let m = all_sensors_mux(&sensors, 1).unwrap();
        assert_eq!(m.len(), 3 * 300);
        assert!(all_sensors_mux(&[], 1).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let s = MemsSensor::new(SensorKind::Magnetometer).with_samples(500);
        assert_eq!(s.xyz_stream(4).unwrap(), s.xyz_stream(4).unwrap());
        assert_ne!(s.xyz_stream(4).unwrap(), s.xyz_stream(5).unwrap());
    }

    #[test]
    fn sensors_produce_distinct_traces() {
        let a = MemsSensor::new(SensorKind::Accelerometer).with_samples(200);
        let g = MemsSensor::new(SensorKind::Gyroscope).with_samples(200);
        assert_ne!(a.xyz_stream(3).unwrap(), g.xyz_stream(3).unwrap());
    }
}
