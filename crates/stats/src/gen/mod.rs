//! Synthetic workload generators covering every data class the paper
//! evaluates.
//!
//! | Generator | Paper artefact | Exploitable property |
//! |---|---|---|
//! | [`GaussianSource`] | Fig. 3 | mean-free normal distribution, optional temporal correlation |
//! | [`SequentialSource`] | Fig. 2 | equally distributed, temporally correlated (branch probability) |
//! | [`UniformSource`] | Sec. 7 | none (worst case for assignment, baseline for coding) |
//! | [`ImageSensor`] | Fig. 4, Sec. 5.1 | adjacent-pixel correlation → temporal pattern correlation |
//! | [`MemsSensor`] | Fig. 5, Secs. 5.2/7 | near-mean-free normal axes, correlation lost under interleaving |
//! | [`NocTraffic`] | Sec. 7 context | bursty on/off load, idle holds create temporal correlation |
//! | [`AudioSource`] | Sec. 4 DSP family | band-limited harmonics: mean-free, strongly correlated |
//!
//! All generators are deterministic given a seed, so experiments are
//! exactly reproducible.

mod audio;
mod gaussian;
mod image;
mod mems;
mod noc;
mod pgm;
mod random;
mod sequential;

pub use audio::AudioSource;
pub use gaussian::GaussianSource;
pub use image::{ImageSensor, SceneKind};
pub use noc::{IdlePolicy, NocTraffic};
pub use pgm::GrayFrame;
pub use mems::{all_sensors_mux, MemsSensor, SensorKind};
pub use random::UniformSource;
pub use sequential::SequentialSource;

/// Quantises a real value in `[-1, 1]` to a signed two's-complement word
/// of `width` bits, saturating at the rails.
///
/// # Panics
///
/// Panics unless `1 <= width <= 64`.
///
/// # Examples
///
/// ```
/// use tsv3d_stats::gen::quantize_signed;
///
/// assert_eq!(quantize_signed(0.0, 8), 0);
/// assert_eq!(quantize_signed(1.0, 8), 0x7F);
/// assert_eq!(quantize_signed(-1.0, 8), 0x81); // −127 in two's complement
/// ```
pub fn quantize_signed(x: f64, width: usize) -> u64 {
    assert!((1..=64).contains(&width), "unsupported width {width}");
    let max = ((1u128 << (width - 1)) - 1) as f64;
    let v = (x * max).round().clamp(-max - 1.0, max) as i64;
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    (v as u64) & mask
}

/// Quantises a real value in `[0, 1]` to an unsigned word of `width`
/// bits, saturating at the rails.
///
/// # Panics
///
/// Panics unless `1 <= width <= 64`.
///
/// # Examples
///
/// ```
/// use tsv3d_stats::gen::quantize_unsigned;
///
/// assert_eq!(quantize_unsigned(0.0, 8), 0);
/// assert_eq!(quantize_unsigned(1.0, 8), 255);
/// assert_eq!(quantize_unsigned(0.5, 8), 128);
/// ```
pub fn quantize_unsigned(x: f64, width: usize) -> u64 {
    assert!((1..=64).contains(&width), "unsupported width {width}");
    let max = if width == 64 {
        u64::MAX as f64
    } else {
        ((1u64 << width) - 1) as f64
    };
    (x * max).round().clamp(0.0, max) as u64
}

/// Draws one standard-normal sample using the Box–Muller transform.
///
/// Kept local (rather than pulling in `rand_distr`) because a single
/// transform covers every generator in this crate.
pub(crate) fn standard_normal(rng: &mut impl rand::Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.gen::<f64>();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quantize_signed_covers_rails() {
        assert_eq!(quantize_signed(2.0, 16), 0x7FFF);
        assert_eq!(quantize_signed(-2.0, 16), 0x8000);
        assert_eq!(quantize_signed(0.5, 8), 64);
    }

    #[test]
    fn quantize_signed_width_64() {
        assert_eq!(quantize_signed(0.0, 64), 0);
        // +max must have the sign bit clear, −max set.
        assert_eq!(quantize_signed(1.0, 64) >> 63, 0);
        assert_eq!(quantize_signed(-1.0, 64) >> 63, 1);
    }

    #[test]
    fn quantize_unsigned_saturates() {
        assert_eq!(quantize_unsigned(-0.5, 8), 0);
        assert_eq!(quantize_unsigned(1.5, 8), 255);
    }

    #[test]
    fn standard_normal_has_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }
}
