//! Bursty network-on-chip traffic — the workload context of the
//! paper's Sec. 7 coupling-invert experiment.
//!
//! NoC links are not continuously loaded: flits arrive in bursts
//! separated by idle periods in which the link holds its last value (or
//! an idle pattern). This on/off (Markov-modulated) source captures
//! that structure: a two-state Markov chain gates a uniform flit
//! generator, and idle cycles repeat the previous word — which *creates*
//! temporal correlation that the bit-to-TSV assignment (and the MOS
//! effect, through the idle-pattern probabilities) can exploit even for
//! otherwise random payloads.

use crate::{BitStream, StatsError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How the link behaves during idle cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdlePolicy {
    /// The link holds the last transmitted flit (no switching).
    HoldLast,
    /// The link returns to an all-zero idle pattern.
    Zero,
    /// The link returns to an all-one idle pattern (the MOS-friendly
    /// choice: idle vias sit depleted at low capacitance).
    One,
}

/// A Markov-modulated on/off flit source.
///
/// # Examples
///
/// ```
/// use tsv3d_stats::gen::{IdlePolicy, NocTraffic};
/// use tsv3d_stats::SwitchingStats;
///
/// # fn main() -> Result<(), tsv3d_stats::StatsError> {
/// let src = NocTraffic::new(8, 0.3)?; // 30 % offered load
/// let stream = src.generate(7, 10_000)?;
/// let stats = SwitchingStats::from_stream(&stream);
/// // Idle holds cut the switching well below the uniform 1/2.
/// assert!(stats.self_switching(0) < 0.4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocTraffic {
    width: usize,
    /// Long-run fraction of busy cycles.
    load: f64,
    /// Mean burst length in flits.
    mean_burst: f64,
    idle: IdlePolicy,
}

impl NocTraffic {
    /// Creates a source of `width`-bit flits with the given offered
    /// load (fraction of busy cycles, clamped into `[0.01, 1.0]`) and a
    /// default mean burst length of 8 flits, holding the last flit when
    /// idle.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidWidth`] for unsupported widths.
    pub fn new(width: usize, load: f64) -> Result<Self, StatsError> {
        if width == 0 || width > 64 {
            return Err(StatsError::InvalidWidth { width });
        }
        Ok(Self {
            width,
            load: load.clamp(0.01, 1.0),
            mean_burst: 8.0,
            idle: IdlePolicy::HoldLast,
        })
    }

    /// Sets the mean burst length in flits (≥ 1).
    pub fn with_mean_burst(mut self, flits: f64) -> Self {
        self.mean_burst = flits.max(1.0);
        self
    }

    /// Sets the idle-cycle policy.
    pub fn with_idle_policy(mut self, idle: IdlePolicy) -> Self {
        self.idle = idle;
        self
    }

    /// Flit width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Offered load (busy-cycle fraction).
    pub fn load(&self) -> f64 {
        self.load
    }

    /// Generates `len` cycles of link traffic, deterministically for a
    /// given seed.
    ///
    /// # Errors
    ///
    /// Propagates stream-construction errors (none in practice).
    pub fn generate(&self, seed: u64, len: usize) -> Result<BitStream, StatsError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        // Two-state Markov chain with the requested stationary load and
        // mean busy-run length.
        let p_leave_busy = 1.0 / self.mean_burst;
        let p_leave_idle = if self.load >= 1.0 {
            1.0
        } else {
            (p_leave_busy * self.load / (1.0 - self.load)).min(1.0)
        };
        let idle_word = match self.idle {
            IdlePolicy::Zero => 0u64,
            IdlePolicy::One => mask,
            IdlePolicy::HoldLast => 0u64, // placeholder, overwritten below
        };
        let mut busy = rng.gen::<f64>() < self.load;
        let mut last = idle_word;
        let mut stream = BitStream::new(self.width)?;
        for _ in 0..len {
            let word = if busy {
                let flit = rng.gen::<u64>() & mask;
                last = flit;
                flit
            } else {
                match self.idle {
                    IdlePolicy::HoldLast => last,
                    IdlePolicy::Zero => 0,
                    IdlePolicy::One => mask,
                }
            };
            stream.push(word)?;
            let leave = if busy { p_leave_busy } else { p_leave_idle };
            if rng.gen::<f64>() < leave {
                busy = !busy;
            }
        }
        Ok(stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SwitchingStats;

    #[test]
    fn load_controls_activity() {
        let lo = NocTraffic::new(8, 0.1).unwrap().generate(3, 30_000).unwrap();
        let hi = NocTraffic::new(8, 0.9).unwrap().generate(3, 30_000).unwrap();
        let act = |s: &BitStream| {
            let st = SwitchingStats::from_stream(s);
            (0..8).map(|i| st.self_switching(i)).sum::<f64>()
        };
        assert!(act(&lo) < 0.5 * act(&hi), "{} vs {}", act(&lo), act(&hi));
    }

    #[test]
    fn busy_fraction_matches_load() {
        // With the Zero idle policy, busy cycles are (almost surely)
        // non-zero words.
        let s = NocTraffic::new(16, 0.3)
            .unwrap()
            .with_idle_policy(IdlePolicy::Zero)
            .generate(9, 50_000)
            .unwrap();
        let busy = s.iter().filter(|&w| w != 0).count() as f64 / s.len() as f64;
        assert!((busy - 0.3).abs() < 0.05, "busy fraction {busy}");
    }

    #[test]
    fn idle_one_raises_bit_probabilities() {
        let zero = NocTraffic::new(8, 0.3)
            .unwrap()
            .with_idle_policy(IdlePolicy::Zero)
            .generate(5, 20_000)
            .unwrap();
        let one = NocTraffic::new(8, 0.3)
            .unwrap()
            .with_idle_policy(IdlePolicy::One)
            .generate(5, 20_000)
            .unwrap();
        let p = |s: &BitStream| SwitchingStats::from_stream(s).bit_probability(0);
        assert!(p(&one) > 0.6 && p(&zero) < 0.4);
    }

    #[test]
    fn longer_bursts_mean_longer_holds() {
        // Same load, longer bursts ⇒ longer idle runs too ⇒ raw word
        // repeats are more common under HoldLast.
        let short = NocTraffic::new(8, 0.5).unwrap().with_mean_burst(2.0);
        let long = NocTraffic::new(8, 0.5).unwrap().with_mean_burst(32.0);
        let repeats = |src: &NocTraffic| {
            let s = src.generate(11, 30_000).unwrap();
            s.words().windows(2).filter(|w| w[0] == w[1]).count()
        };
        assert!(repeats(&long) > repeats(&short));
    }

    #[test]
    fn deterministic_and_validated() {
        let src = NocTraffic::new(8, 0.4).unwrap();
        assert_eq!(src.generate(1, 100).unwrap(), src.generate(1, 100).unwrap());
        assert!(NocTraffic::new(0, 0.5).is_err());
        assert!(NocTraffic::new(65, 0.5).is_err());
        // Load clamping.
        assert_eq!(NocTraffic::new(8, 7.0).unwrap().load(), 1.0);
    }
}
