//! Minimal PGM (portable graymap) decoding — bring-your-own-images for
//! the VSoC experiments.
//!
//! The synthetic scenes of [`ImageSensor`](crate::gen::ImageSensor)
//! reproduce the *statistics* of photographs; teams that want to run
//! the Fig. 4 pipeline on their own material can load any grayscale
//! image saved as PGM (both the ASCII `P2` and binary `P5` variants are
//! supported — every image tool can produce them) and feed it in via
//! [`ImageSensor::with_custom_frames`](crate::gen::ImageSensor::with_custom_frames).

use crate::StatsError;

/// A decoded grayscale frame with luminance in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct GrayFrame {
    width: usize,
    height: usize,
    luma: Vec<f64>,
}

impl GrayFrame {
    /// Builds a frame from row-major luminance samples in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidWidth`] when the dimensions are zero or do
    /// not match the sample count (the width field carries the
    /// offending dimension).
    pub fn from_luma(width: usize, height: usize, luma: Vec<f64>) -> Result<Self, StatsError> {
        if width == 0 || height == 0 || luma.len() != width * height {
            return Err(StatsError::InvalidWidth { width });
        }
        Ok(Self {
            width,
            height,
            luma: luma.into_iter().map(|v| v.clamp(0.0, 1.0)).collect(),
        })
    }

    /// Decodes a PGM image (`P2` ASCII or `P5` binary, 8- or 16-bit).
    ///
    /// # Errors
    ///
    /// [`StatsError::PgmParse`] for malformed input.
    pub fn from_pgm(bytes: &[u8]) -> Result<Self, StatsError> {
        let mut cursor = 0usize;
        let magic = next_token(bytes, &mut cursor).ok_or_else(|| parse_err("missing magic"))?;
        let binary = match magic.as_str() {
            "P2" => false,
            "P5" => true,
            other => return Err(parse_err(&format!("unsupported magic `{other}`"))),
        };
        let width: usize = parse_token(bytes, &mut cursor, "width")?;
        let height: usize = parse_token(bytes, &mut cursor, "height")?;
        let maxval: u32 = parse_token(bytes, &mut cursor, "maxval")?;
        if width == 0 || height == 0 || maxval == 0 || maxval > 65_535 {
            return Err(parse_err("invalid dimensions or maxval"));
        }
        let pixels = width * height;
        let mut luma = Vec::with_capacity(pixels);
        if binary {
            // One whitespace byte separates the header from the raster.
            cursor += 1;
            let wide = maxval > 255;
            let bytes_per = if wide { 2 } else { 1 };
            if bytes.len() < cursor + pixels * bytes_per {
                return Err(parse_err("truncated raster"));
            }
            for k in 0..pixels {
                let v = if wide {
                    u32::from(bytes[cursor + 2 * k]) << 8 | u32::from(bytes[cursor + 2 * k + 1])
                } else {
                    u32::from(bytes[cursor + k])
                };
                luma.push(f64::from(v.min(maxval)) / f64::from(maxval));
            }
        } else {
            for _ in 0..pixels {
                let v: u32 = parse_token(bytes, &mut cursor, "pixel")?;
                luma.push(f64::from(v.min(maxval)) / f64::from(maxval));
            }
        }
        Self::from_luma(width, height, luma)
    }

    /// Frame width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Row-major luminance samples in `[0, 1]`.
    pub fn luma(&self) -> &[f64] {
        &self.luma
    }

    /// Resamples the frame to `width × height` (nearest neighbour) —
    /// handy to match a sensor resolution.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidWidth`] for zero target dimensions.
    pub fn resampled(&self, width: usize, height: usize) -> Result<Self, StatsError> {
        if width == 0 || height == 0 {
            return Err(StatsError::InvalidWidth { width });
        }
        let mut luma = Vec::with_capacity(width * height);
        for y in 0..height {
            let sy = y * self.height / height;
            for x in 0..width {
                let sx = x * self.width / width;
                luma.push(self.luma[sy * self.width + sx]);
            }
        }
        Self::from_luma(width, height, luma)
    }
}

fn parse_err(detail: &str) -> StatsError {
    StatsError::PgmParse {
        detail: detail.to_string(),
    }
}

/// Reads the next whitespace-delimited token, skipping `#` comments.
fn next_token(bytes: &[u8], cursor: &mut usize) -> Option<String> {
    // Skip whitespace and comments.
    loop {
        while *cursor < bytes.len() && bytes[*cursor].is_ascii_whitespace() {
            *cursor += 1;
        }
        if *cursor < bytes.len() && bytes[*cursor] == b'#' {
            while *cursor < bytes.len() && bytes[*cursor] != b'\n' {
                *cursor += 1;
            }
        } else {
            break;
        }
    }
    let start = *cursor;
    while *cursor < bytes.len() && !bytes[*cursor].is_ascii_whitespace() {
        *cursor += 1;
    }
    if start == *cursor {
        None
    } else {
        Some(String::from_utf8_lossy(&bytes[start..*cursor]).into_owned())
    }
}

fn parse_token<T: std::str::FromStr>(
    bytes: &[u8],
    cursor: &mut usize,
    what: &str,
) -> Result<T, StatsError> {
    next_token(bytes, cursor)
        .ok_or_else(|| parse_err(&format!("missing {what}")))?
        .parse()
        .map_err(|_| parse_err(&format!("malformed {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_ascii_p2() {
        let pgm = b"P2\n# a comment\n3 2\n255\n0 128 255\n64 32 16\n";
        let f = GrayFrame::from_pgm(pgm).unwrap();
        assert_eq!((f.width(), f.height()), (3, 2));
        assert!((f.luma()[1] - 128.0 / 255.0).abs() < 1e-12);
        assert_eq!(f.luma()[2], 1.0);
    }

    #[test]
    fn decodes_binary_p5() {
        let mut pgm = b"P5 4 1 255\n".to_vec();
        pgm.extend_from_slice(&[0, 85, 170, 255]);
        let f = GrayFrame::from_pgm(&pgm).unwrap();
        assert_eq!((f.width(), f.height()), (4, 1));
        assert!((f.luma()[1] - 85.0 / 255.0).abs() < 1e-12);
    }

    #[test]
    fn decodes_16bit_p5() {
        let mut pgm = b"P5 2 1 65535\n".to_vec();
        pgm.extend_from_slice(&[0x80, 0x00, 0xFF, 0xFF]);
        let f = GrayFrame::from_pgm(&pgm).unwrap();
        assert!((f.luma()[0] - 32768.0 / 65535.0).abs() < 1e-9);
        assert_eq!(f.luma()[1], 1.0);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(GrayFrame::from_pgm(b"P6 1 1 255\n\0\0\0").is_err());
        assert!(GrayFrame::from_pgm(b"P2\n2 2\n255\n1 2 3").is_err()); // short raster
        assert!(GrayFrame::from_pgm(b"P5 2 2 255\nab").is_err()); // truncated
        assert!(GrayFrame::from_pgm(b"P2 x 2 255 1 2").is_err());
        assert!(GrayFrame::from_pgm(b"").is_err());
    }

    #[test]
    fn comments_anywhere_in_header() {
        let pgm = b"P2 # magic\n# width next\n2\n#height\n1\n255\n7 9\n";
        let f = GrayFrame::from_pgm(pgm).unwrap();
        assert_eq!((f.width(), f.height()), (2, 1));
    }

    #[test]
    fn resampling_preserves_range_and_dims() {
        let f = GrayFrame::from_luma(4, 4, (0..16).map(|v| v as f64 / 15.0).collect()).unwrap();
        let r = f.resampled(8, 2).unwrap();
        assert_eq!((r.width(), r.height()), (8, 2));
        assert!(r.luma().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(f.resampled(0, 2).is_err());
    }

    #[test]
    fn from_luma_validates() {
        assert!(GrayFrame::from_luma(2, 2, vec![0.0; 3]).is_err());
        assert!(GrayFrame::from_luma(0, 2, vec![]).is_err());
        // Out-of-range samples are clamped.
        let f = GrayFrame::from_luma(1, 1, vec![7.0]).unwrap();
        assert_eq!(f.luma()[0], 1.0);
    }
}
