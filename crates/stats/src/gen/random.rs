//! Uniformly random word streams — the uncoded baseline of Sec. 7's
//! network-on-chip experiment.

use crate::{BitStream, StatsError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Source of independent, uniformly distributed `width`-bit words.
///
/// Every bit has probability 1/2, self-switching 1/2 and no correlation
/// with any other bit — the stream a bit-to-TSV assignment alone cannot
/// improve, which is why Sec. 7 pairs it with the coupling-invert code.
///
/// # Examples
///
/// ```
/// use tsv3d_stats::gen::UniformSource;
///
/// # fn main() -> Result<(), tsv3d_stats::StatsError> {
/// let s = UniformSource::new(7)?.generate(99, 1000)?;
/// assert_eq!(s.width(), 7);
/// assert_eq!(s.len(), 1000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformSource {
    width: usize,
}

impl UniformSource {
    /// Creates a uniform source of the given word width.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidWidth`] unless `1 <= width <= 64`.
    pub fn new(width: usize) -> Result<Self, StatsError> {
        if width == 0 || width > 64 {
            return Err(StatsError::InvalidWidth { width });
        }
        Ok(Self { width })
    }

    /// Word width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Generates `len` words, deterministically for a given seed.
    ///
    /// # Errors
    ///
    /// Propagates stream-construction errors (none in practice).
    pub fn generate(&self, seed: u64, len: usize) -> Result<BitStream, StatsError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        let mut stream = BitStream::new(self.width)?;
        for _ in 0..len {
            stream.push(rng.gen::<u64>() & mask)?;
        }
        Ok(stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SwitchingStats;

    #[test]
    fn all_bits_behave_like_fair_coins() {
        let s = UniformSource::new(8).unwrap().generate(17, 30_000).unwrap();
        let stats = SwitchingStats::from_stream(&s);
        for i in 0..8 {
            assert!((stats.bit_probability(i) - 0.5).abs() < 0.02);
            assert!((stats.self_switching(i) - 0.5).abs() < 0.02);
            for j in 0..8 {
                if i != j {
                    assert!(stats.coupling_switching(i, j).abs() < 0.03);
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let src = UniformSource::new(16).unwrap();
        assert_eq!(src.generate(3, 50).unwrap(), src.generate(3, 50).unwrap());
        assert_ne!(src.generate(3, 50).unwrap(), src.generate(4, 50).unwrap());
    }

    #[test]
    fn rejects_bad_width() {
        assert!(UniformSource::new(0).is_err());
        assert!(UniformSource::new(65).is_err());
    }
}
