//! Sequential (program-counter-like) streams with a branch probability —
//! the workload of the paper's Fig. 2.

use crate::{BitStream, StatsError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Source of address-like words: the word increments by one each cycle
/// and, with the *branch probability*, jumps to a uniformly random value
/// instead.
///
/// The resulting patterns are equally distributed (every value is equally
/// likely in steady state) but temporally correlated — the lower the
/// branch probability, the stronger the correlation. This is exactly the
/// family the paper uses to validate the Spiral assignment: LSBs toggle
/// almost every cycle, MSBs only on carries or branches.
///
/// # Examples
///
/// ```
/// use tsv3d_stats::gen::SequentialSource;
/// use tsv3d_stats::SwitchingStats;
///
/// # fn main() -> Result<(), tsv3d_stats::StatsError> {
/// let src = SequentialSource::new(16, 0.01)?;
/// let stats = SwitchingStats::from_stream(&src.generate(1, 10_000)?);
/// // Bit 0 toggles every increment; bit 12 almost never.
/// assert!(stats.self_switching(0) > 0.95);
/// assert!(stats.self_switching(12) < 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequentialSource {
    width: usize,
    branch_probability: f64,
}

impl SequentialSource {
    /// Creates a source of `width`-bit sequential words with the given
    /// branch probability in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidWidth`] for unsupported widths. Branch
    /// probabilities are clamped into `[0, 1]`.
    pub fn new(width: usize, branch_probability: f64) -> Result<Self, StatsError> {
        if width == 0 || width > 64 {
            return Err(StatsError::InvalidWidth { width });
        }
        Ok(Self {
            width,
            branch_probability: branch_probability.clamp(0.0, 1.0),
        })
    }

    /// Word width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The branch probability.
    pub fn branch_probability(&self) -> f64 {
        self.branch_probability
    }

    /// Generates `len` words, deterministically for a given seed.
    ///
    /// # Errors
    ///
    /// Propagates stream-construction errors (none in practice).
    pub fn generate(&self, seed: u64, len: usize) -> Result<BitStream, StatsError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        let mut stream = BitStream::new(self.width)?;
        let mut addr: u64 = rng.gen::<u64>() & mask;
        for _ in 0..len {
            stream.push(addr)?;
            if rng.gen::<f64>() < self.branch_probability {
                addr = rng.gen::<u64>() & mask;
            } else {
                addr = addr.wrapping_add(1) & mask;
            }
        }
        Ok(stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SwitchingStats;

    #[test]
    fn zero_branch_probability_counts_up() {
        let src = SequentialSource::new(8, 0.0).unwrap();
        let s = src.generate(4, 10).unwrap();
        for t in 1..10 {
            assert_eq!(s.word(t), (s.word(t - 1) + 1) & 0xFF);
        }
    }

    #[test]
    fn branch_probability_one_is_uniform_random() {
        let src = SequentialSource::new(16, 1.0).unwrap();
        let stats = SwitchingStats::from_stream(&src.generate(8, 20_000).unwrap());
        for i in 0..16 {
            assert!(
                (stats.self_switching(i) - 0.5).abs() < 0.05,
                "bit {i}: {}",
                stats.self_switching(i)
            );
        }
    }

    #[test]
    fn self_switching_decreases_towards_msb() {
        let src = SequentialSource::new(16, 0.001).unwrap();
        let stats = SwitchingStats::from_stream(&src.generate(2, 50_000).unwrap());
        // Carry-chain: each higher bit toggles half as often.
        assert!(stats.self_switching(0) > 0.9);
        assert!(stats.self_switching(1) < 0.6);
        assert!(stats.self_switching(4) < 0.1);
        assert!(stats.self_switching(2) > stats.self_switching(6));
    }

    #[test]
    fn probability_clamped() {
        let src = SequentialSource::new(8, 7.0).unwrap();
        assert_eq!(src.branch_probability(), 1.0);
        let src = SequentialSource::new(8, -1.0).unwrap();
        assert_eq!(src.branch_probability(), 0.0);
    }

    #[test]
    fn equally_distributed_bit_probabilities() {
        let src = SequentialSource::new(12, 0.05).unwrap();
        let stats = SwitchingStats::from_stream(&src.generate(21, 40_000).unwrap());
        for i in 0..12 {
            assert!(
                (stats.bit_probability(i) - 0.5).abs() < 0.08,
                "bit {i}: {}",
                stats.bit_probability(i)
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let src = SequentialSource::new(10, 0.1).unwrap();
        assert_eq!(src.generate(5, 64).unwrap(), src.generate(5, 64).unwrap());
    }

    #[test]
    fn rejects_bad_width() {
        assert!(SequentialSource::new(0, 0.5).is_err());
        assert!(SequentialSource::new(65, 0.5).is_err());
        assert!(SequentialSource::new(64, 0.5).is_ok());
    }
}
