//! Bit-level data streams, switching statistics and synthetic workload
//! generators for TSV low-power coding.
//!
//! The power model of the DAC'18 paper consumes three statistical
//! quantities of the bit stream crossing a TSV array (Eqs. 1–3):
//!
//! * the *self-switching* probabilities `E{Δb_i²}`,
//! * the *coupling-switching* expectations `E{Δb_i Δb_j}`, and
//! * the *1-bit probabilities* `E{b_i}` (through the MOS effect,
//!   Eqs. 6–9).
//!
//! [`BitStream`] represents a stream of up-to-64-bit words and
//! [`SwitchingStats`] estimates all three quantities from it; the
//! [`dbt`] module provides the same quantities in *closed form* for
//! Gaussian DSP signals (the dual-bit-type model of Ref. \[18\]), so
//! assignments can be designed with no sample data at all. The
//! [`gen`] module synthesises every workload class the paper evaluates:
//! temporally correlated sequential streams (Fig. 2), Gaussian DSP
//! patterns (Fig. 3), image-sensor readout (Fig. 4, Sec. 5.1), MEMS
//! sensor traces (Fig. 5, Sec. 5.2) and uniform random data (Sec. 7).
//!
//! # Examples
//!
//! ```
//! use tsv3d_stats::{BitStream, SwitchingStats};
//!
//! # fn main() -> Result<(), tsv3d_stats::StatsError> {
//! // A 2-bit stream: 00 → 01 → 11 → 10.
//! let stream = BitStream::from_words(2, vec![0b00, 0b01, 0b11, 0b10])?;
//! let stats = SwitchingStats::from_stream(&stream);
//! // Bit 0 toggles on transitions 1 and 3 of 3.
//! assert!((stats.self_switching(0) - 2.0 / 3.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dbt;
mod error;
pub mod gen;
mod stream;
mod switching;

pub use error::StatsError;
pub use stream::BitStream;
pub use switching::SwitchingStats;
