//! Bit streams: sequences of up-to-64-bit words crossing a TSV bundle.

use crate::StatsError;

/// A stream of `width`-bit words, one word per clock cycle.
///
/// Bit `i` of a word is the `i`-th least significant bit; for signed DSP
/// data bit `width - 1` is the MSB (sign bit). Widths up to 64 bits cover
/// every TSV bundle analysed in the paper (the largest is the 6×6 array,
/// 36 lines).
///
/// # Examples
///
/// ```
/// use tsv3d_stats::BitStream;
///
/// # fn main() -> Result<(), tsv3d_stats::StatsError> {
/// let mut s = BitStream::new(4)?;
/// s.push(0b1010)?;
/// s.push(0b0110)?;
/// assert_eq!(s.len(), 2);
/// assert!(s.bit(0, 1));
/// assert!(!s.bit(1, 0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitStream {
    width: usize,
    words: Vec<u64>,
}

impl BitStream {
    /// Creates an empty stream of the given word width.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidWidth`] unless `1 <= width <= 64`.
    pub fn new(width: usize) -> Result<Self, StatsError> {
        if width == 0 || width > 64 {
            return Err(StatsError::InvalidWidth { width });
        }
        Ok(Self {
            width,
            words: Vec::new(),
        })
    }

    /// Creates a stream from existing words.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidWidth`] for an unsupported width and
    /// [`StatsError::WordTooWide`] if any word has bits above `width`.
    pub fn from_words(width: usize, words: Vec<u64>) -> Result<Self, StatsError> {
        let mut s = Self::new(width)?;
        for (index, &word) in words.iter().enumerate() {
            if word & !s.mask() != 0 {
                return Err(StatsError::WordTooWide { index, word, width });
            }
        }
        s.words = words;
        Ok(s)
    }

    /// Bit mask covering the stream width.
    fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// Appends a word to the stream.
    ///
    /// # Errors
    ///
    /// [`StatsError::WordTooWide`] if the word has bits above `width`.
    pub fn push(&mut self, word: u64) -> Result<(), StatsError> {
        if word & !self.mask() != 0 {
            return Err(StatsError::WordTooWide {
                index: self.words.len(),
                word,
                width: self.width,
            });
        }
        self.words.push(word);
        Ok(())
    }

    /// Word width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of words (clock cycles).
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` if the stream has no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The word at cycle `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= len()`.
    pub fn word(&self, t: usize) -> u64 {
        self.words[t]
    }

    /// Bit `i` of the word at cycle `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= len()` or `i >= width()`.
    pub fn bit(&self, t: usize, i: usize) -> bool {
        assert!(i < self.width, "bit index {i} out of width {}", self.width);
        (self.words[t] >> i) & 1 == 1
    }

    /// Iterator over the words.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.words.iter().copied()
    }

    /// The underlying word slice.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Returns a new stream with extra *stable* lines appended above the
    /// MSB, each holding the given constant value on every cycle.
    ///
    /// This models the enable / redundant / power / ground lines sharing
    /// a TSV array with the data bits (paper Sec. 5.1).
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidWidth`] if the combined width exceeds 64.
    ///
    /// # Examples
    ///
    /// ```
    /// use tsv3d_stats::BitStream;
    ///
    /// # fn main() -> Result<(), tsv3d_stats::StatsError> {
    /// let s = BitStream::from_words(2, vec![0b01, 0b10])?;
    /// // Append one always-0 and one always-1 line.
    /// let wide = s.with_stable_lines(&[false, true])?;
    /// assert_eq!(wide.width(), 4);
    /// assert_eq!(wide.word(0), 0b1001);
    /// # Ok(())
    /// # }
    /// ```
    pub fn with_stable_lines(&self, values: &[bool]) -> Result<Self, StatsError> {
        let new_width = self.width + values.len();
        let mut high = 0u64;
        for (k, &v) in values.iter().enumerate() {
            if v {
                high |= 1u64 << (self.width + k);
            }
        }
        let words = self.words.iter().map(|w| w | high).collect();
        Self::from_words(new_width, words)
    }

    /// Multiplexes several same-width streams word-by-word (round-robin):
    /// cycle `t` of the result is word `t / k` of stream `t % k`.
    ///
    /// This models transmitting, e.g., the R, G, G, B colour components
    /// one after another over a narrow TSV array ("RGB Mux.", Sec. 5.1)
    /// or interleaving the x/y/z axes of a MEMS sensor (Sec. 5.2).
    ///
    /// # Errors
    ///
    /// [`StatsError::NoStreams`] for an empty input and
    /// [`StatsError::WidthMismatch`] for differing widths. Streams are
    /// truncated to the shortest length.
    pub fn multiplex(streams: &[&BitStream]) -> Result<Self, StatsError> {
        let first = streams.first().ok_or(StatsError::NoStreams)?;
        for s in streams {
            if s.width != first.width {
                return Err(StatsError::WidthMismatch {
                    first: first.width,
                    other: s.width,
                });
            }
        }
        let min_len = streams.iter().map(|s| s.len()).min().unwrap_or(0);
        let mut words = Vec::with_capacity(min_len * streams.len());
        for t in 0..min_len {
            for s in streams {
                words.push(s.words[t]);
            }
        }
        Self::from_words(first.width, words)
    }

    /// Concatenates several same-width streams back-to-back in time:
    /// all words of the first stream, then all of the second, …
    ///
    /// This models the "Sensor Seq." data stream of Sec. 7, where each
    /// sensor's trace is transmitted *en bloc* before the next one.
    ///
    /// # Errors
    ///
    /// [`StatsError::NoStreams`] for an empty input and
    /// [`StatsError::WidthMismatch`] for differing widths.
    pub fn concat(streams: &[&BitStream]) -> Result<Self, StatsError> {
        let first = streams.first().ok_or(StatsError::NoStreams)?;
        let mut words = Vec::new();
        for s in streams {
            if s.width != first.width {
                return Err(StatsError::WidthMismatch {
                    first: first.width,
                    other: s.width,
                });
            }
            words.extend_from_slice(&s.words);
        }
        Self::from_words(first.width, words)
    }

    /// Packs several streams *side by side* into one wide stream: the
    /// first stream occupies the least significant bits.
    ///
    /// This models the parallel transmission of all four Bayer colour
    /// components over one 32-bit array (Sec. 5.1, first analysis).
    ///
    /// # Errors
    ///
    /// [`StatsError::NoStreams`] for an empty input and
    /// [`StatsError::InvalidWidth`] if the total width exceeds 64.
    /// Streams are truncated to the shortest length.
    pub fn pack(streams: &[&BitStream]) -> Result<Self, StatsError> {
        if streams.is_empty() {
            return Err(StatsError::NoStreams);
        }
        let total_width: usize = streams.iter().map(|s| s.width).sum();
        let min_len = streams.iter().map(|s| s.len()).min().unwrap_or(0);
        let mut words = Vec::with_capacity(min_len);
        for t in 0..min_len {
            let mut word = 0u64;
            let mut shift = 0usize;
            for s in streams {
                word |= s.words[t] << shift;
                shift += s.width;
            }
            words.push(word);
        }
        Self::from_words(total_width, words)
    }

    /// Empirical 1-bit probability of bit `i` over the whole stream.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width()`; returns 0 for an empty stream.
    pub fn bit_probability(&self, i: usize) -> f64 {
        assert!(i < self.width, "bit index {i} out of width {}", self.width);
        if self.words.is_empty() {
            return 0.0;
        }
        let ones = self.words.iter().filter(|w| (**w >> i) & 1 == 1).count();
        ones as f64 / self.words.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_bounds_enforced() {
        assert!(BitStream::new(0).is_err());
        assert!(BitStream::new(65).is_err());
        assert!(BitStream::new(64).is_ok());
    }

    #[test]
    fn from_words_checks_fit() {
        assert!(BitStream::from_words(4, vec![0xF]).is_ok());
        assert!(matches!(
            BitStream::from_words(4, vec![0x10]),
            Err(StatsError::WordTooWide { index: 0, .. })
        ));
    }

    #[test]
    fn push_checks_fit() {
        let mut s = BitStream::new(3).unwrap();
        assert!(s.push(0b111).is_ok());
        assert!(s.push(0b1000).is_err());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn width_64_mask_does_not_overflow() {
        let s = BitStream::from_words(64, vec![u64::MAX]).unwrap();
        assert!(s.bit(0, 63));
    }

    #[test]
    fn stable_lines_append_above_msb() {
        let s = BitStream::from_words(2, vec![0b01, 0b11]).unwrap();
        let w = s.with_stable_lines(&[true, false, true]).unwrap();
        assert_eq!(w.width(), 5);
        assert_eq!(w.word(0), 0b10101);
        assert_eq!(w.word(1), 0b10111);
        assert_eq!(w.bit_probability(2), 1.0);
        assert_eq!(w.bit_probability(3), 0.0);
    }

    #[test]
    fn multiplex_round_robins() {
        let a = BitStream::from_words(4, vec![1, 2]).unwrap();
        let b = BitStream::from_words(4, vec![9, 10]).unwrap();
        let m = BitStream::multiplex(&[&a, &b]).unwrap();
        assert_eq!(m.words(), &[1, 9, 2, 10]);
    }

    #[test]
    fn multiplex_truncates_to_shortest() {
        let a = BitStream::from_words(4, vec![1, 2, 3]).unwrap();
        let b = BitStream::from_words(4, vec![9]).unwrap();
        let m = BitStream::multiplex(&[&a, &b]).unwrap();
        assert_eq!(m.words(), &[1, 9]);
    }

    #[test]
    fn multiplex_rejects_mixed_widths() {
        let a = BitStream::from_words(4, vec![1]).unwrap();
        let b = BitStream::from_words(5, vec![1]).unwrap();
        assert!(matches!(
            BitStream::multiplex(&[&a, &b]),
            Err(StatsError::WidthMismatch { first: 4, other: 5 })
        ));
        assert!(matches!(BitStream::multiplex(&[]), Err(StatsError::NoStreams)));
    }

    #[test]
    fn concat_appends_in_time() {
        let a = BitStream::from_words(4, vec![1, 2]).unwrap();
        let b = BitStream::from_words(4, vec![3]).unwrap();
        let c = BitStream::concat(&[&a, &b]).unwrap();
        assert_eq!(c.words(), &[1, 2, 3]);
    }

    #[test]
    fn pack_places_first_stream_in_lsbs() {
        let a = BitStream::from_words(4, vec![0xA, 0x1]).unwrap();
        let b = BitStream::from_words(4, vec![0xB, 0x2]).unwrap();
        let p = BitStream::pack(&[&a, &b]).unwrap();
        assert_eq!(p.width(), 8);
        assert_eq!(p.word(0), 0xBA);
        assert_eq!(p.word(1), 0x21);
    }

    #[test]
    fn pack_rejects_overflow_width() {
        let a = BitStream::from_words(40, vec![0]).unwrap();
        let b = BitStream::from_words(40, vec![0]).unwrap();
        assert!(matches!(
            BitStream::pack(&[&a, &b]),
            Err(StatsError::InvalidWidth { width: 80 })
        ));
    }

    #[test]
    fn bit_probability_counts_ones() {
        let s = BitStream::from_words(2, vec![0b01, 0b11, 0b00, 0b01]).unwrap();
        assert_eq!(s.bit_probability(0), 0.75);
        assert_eq!(s.bit_probability(1), 0.25);
    }

    #[test]
    fn empty_stream_probability_is_zero() {
        let s = BitStream::new(4).unwrap();
        assert_eq!(s.bit_probability(0), 0.0);
        assert!(s.is_empty());
    }
}
