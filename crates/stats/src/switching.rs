//! Switching statistics of a bit stream — the `T`-matrix ingredients of
//! the power model (paper Eqs. 1–3).

use crate::BitStream;
use tsv3d_matrix::Matrix;

/// Bit-level switching statistics of a data stream.
///
/// For each bit `i` of the word the paper's model needs:
///
/// * `E{Δb_i²}` — the **self-switching** probability (diagonal of `Ts`);
/// * `E{Δb_i Δb_j}` — the **coupling switching** expectation (`Tc`),
///   positive when bits tend to toggle in the same direction, negative
///   when they toggle oppositely;
/// * `E{b_i}` — the **1-bit probability**, which steers the MOS-effect
///   capacitance model through `ε_i = E{b_i} − 1/2`.
///
/// # Examples
///
/// Two perfectly correlated bits:
///
/// ```
/// use tsv3d_stats::{BitStream, SwitchingStats};
///
/// # fn main() -> Result<(), tsv3d_stats::StatsError> {
/// let s = BitStream::from_words(2, vec![0b00, 0b11, 0b00, 0b11])?;
/// let st = SwitchingStats::from_stream(&s);
/// assert_eq!(st.coupling_switching(0, 1), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchingStats {
    /// `E{Δb_i²}` per bit.
    ts: Vec<f64>,
    /// `E{Δb_i Δb_j}`; diagonal entries equal `ts`.
    tc: Matrix,
    /// `E{b_i}` per bit.
    probs: Vec<f64>,
    /// `E{|Δb_i Δb_j|}` — the probability that both bits toggle in the
    /// same cycle. `None` for analytically constructed statistics,
    /// where the independence approximation `Ts_i · Ts_j` is used.
    joint: Option<Matrix>,
}

impl SwitchingStats {
    /// Estimates the statistics from a stream.
    ///
    /// Streams with fewer than two words have no transitions; all
    /// switching quantities are zero then.
    pub fn from_stream(stream: &BitStream) -> Self {
        let n = stream.width();
        let mut ts = vec![0.0; n];
        let mut tc = Matrix::zeros(n);
        let mut probs = vec![0.0; n];

        let len = stream.len();
        if len > 0 {
            for (i, p) in probs.iter_mut().enumerate() {
                *p = stream.bit_probability(i);
            }
        }
        let mut joint = Matrix::zeros(n);
        if len >= 2 {
            let transitions = (len - 1) as f64;
            // Δb_t per bit: +1, 0 or −1.
            let mut delta = vec![0i32; n];
            for t in 1..len {
                let prev = stream.word(t - 1);
                let cur = stream.word(t);
                for (i, d) in delta.iter_mut().enumerate() {
                    let pb = (prev >> i) & 1;
                    let cb = (cur >> i) & 1;
                    *d = cb as i32 - pb as i32;
                }
                for i in 0..n {
                    if delta[i] != 0 {
                        ts[i] += 1.0;
                        for j in 0..n {
                            if delta[j] != 0 {
                                tc[(i, j)] += (delta[i] * delta[j]) as f64;
                                joint[(i, j)] += 1.0;
                            }
                        }
                    }
                }
            }
            for v in ts.iter_mut() {
                *v /= transitions;
            }
            tc = tc.scale(1.0 / transitions);
            joint = joint.scale(1.0 / transitions);
        }
        Self {
            ts,
            tc,
            probs,
            joint: Some(joint),
        }
    }

    /// Estimates per-window statistics: the stream is cut into
    /// consecutive windows of `window` cycles (the tail shorter than
    /// two cycles is dropped) and each window is analysed separately.
    ///
    /// Useful for *phased* workloads — e.g. the paper's "Sensor Seq."
    /// stream transmits one sensor axis after another, and each phase
    /// has its own exploitable structure.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn from_stream_windowed(stream: &BitStream, window: usize) -> Vec<Self> {
        assert!(window > 0, "window must be at least one cycle");
        let mut out = Vec::new();
        let mut start = 0;
        while start + 1 < stream.len() {
            let end = (start + window).min(stream.len());
            let words: Vec<u64> = (start..end).map(|t| stream.word(t)).collect();
            let slice = BitStream::from_words(stream.width(), words)
                .expect("slice of a valid stream is valid");
            out.push(Self::from_stream(&slice));
            start = end;
        }
        out
    }

    /// Builds statistics from explicit quantities (e.g. closed-form DSP
    /// models or unit tests).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions disagree.
    pub fn from_parts(ts: Vec<f64>, tc: Matrix, probs: Vec<f64>) -> Self {
        assert_eq!(ts.len(), tc.n(), "ts and tc dimension mismatch");
        assert_eq!(probs.len(), tc.n(), "probs and tc dimension mismatch");
        Self {
            ts,
            tc,
            probs,
            joint: None,
        }
    }

    /// Number of bits.
    pub fn n(&self) -> usize {
        self.ts.len()
    }

    /// Self-switching probability `E{Δb_i²}` of bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n()`.
    pub fn self_switching(&self, i: usize) -> f64 {
        self.ts[i]
    }

    /// All self-switching probabilities.
    pub fn self_switchings(&self) -> &[f64] {
        &self.ts
    }

    /// Coupling switching `E{Δb_i Δb_j}`.
    ///
    /// For `i == j` this equals the self-switching probability.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn coupling_switching(&self, i: usize, j: usize) -> f64 {
        self.tc[(i, j)]
    }

    /// The full coupling matrix (diagonal = self switching).
    pub fn coupling_matrix(&self) -> &Matrix {
        &self.tc
    }

    /// 1-bit probability `E{b_i}` of bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n()`.
    pub fn bit_probability(&self, i: usize) -> f64 {
        self.probs[i]
    }

    /// All 1-bit probabilities.
    pub fn bit_probabilities(&self) -> &[f64] {
        &self.probs
    }

    /// Probability that bits `i` and `j` toggle in the *same* cycle,
    /// `E{|Δb_i Δb_j|}`.
    ///
    /// Measured exactly for stream-derived statistics; analytically
    /// constructed statistics (e.g. [`from_parts`]) fall back to the
    /// independence approximation `Ts_i · Ts_j` (with `i == j` giving
    /// `Ts_i`).
    ///
    /// [`from_parts`]: SwitchingStats::from_parts
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn joint_switching(&self, i: usize, j: usize) -> f64 {
        match &self.joint {
            Some(m) => m[(i, j)],
            None if i == j => self.ts[i],
            None => self.ts[i] * self.ts[j],
        }
    }

    /// Probability that bits `i ≠ j` toggle in *opposite* directions in
    /// the same cycle, `P(Δb_i Δb_j = −1) = (E{|ΔΔ|} − E{ΔΔ}) / 2` —
    /// the transition class with the highest coupling energy and the
    /// worst crosstalk.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn opposite_switching(&self, i: usize, j: usize) -> f64 {
        ((self.joint_switching(i, j) - self.tc[(i, j)]) / 2.0).max(0.0)
    }

    /// Centred probabilities `ε_i = E{b_i} − 1/2` (paper Eq. 8).
    pub fn epsilons(&self) -> Vec<f64> {
        self.probs.iter().map(|p| p - 0.5).collect()
    }

    /// The paper's switching matrix `T = Ts·1_{N×N} − Tc` (Eq. 3), in
    /// *bit* indexing, with the convention that `Tc`'s diagonal is zero
    /// inside `T` (the diagonal of `T` carries only the self switching).
    ///
    /// `⟨T, C⟩` is then the normalised power consumption (Eq. 2).
    pub fn t_matrix(&self) -> Matrix {
        let n = self.n();
        Matrix::from_fn(n, |i, j| {
            if i == j {
                self.ts[i]
            } else {
                self.ts[i] - self.tc[(i, j)]
            }
        })
    }

    /// The diagonal self-switching matrix `Ts` (Eq. 3).
    pub fn ts_matrix(&self) -> Matrix {
        Matrix::from_diag(&self.ts)
    }

    /// The off-diagonal coupling matrix `Tc` with a zero diagonal
    /// (Eq. 3).
    pub fn tc_matrix(&self) -> Matrix {
        let n = self.n();
        Matrix::from_fn(n, |i, j| if i == j { 0.0 } else { self.tc[(i, j)] })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(width: usize, words: &[u64]) -> BitStream {
        BitStream::from_words(width, words.to_vec()).expect("valid stream")
    }

    #[test]
    fn toggling_bit_switches_every_cycle() {
        let st = SwitchingStats::from_stream(&stream(1, &[0, 1, 0, 1, 0]));
        assert_eq!(st.self_switching(0), 1.0);
        assert_eq!(st.bit_probability(0), 0.4);
    }

    #[test]
    fn constant_bit_never_switches() {
        let st = SwitchingStats::from_stream(&stream(2, &[0b10, 0b10, 0b10]));
        assert_eq!(st.self_switching(0), 0.0);
        assert_eq!(st.self_switching(1), 0.0);
        assert_eq!(st.bit_probability(1), 1.0);
    }

    #[test]
    fn anticorrelated_bits_have_negative_coupling() {
        // Bits always toggle in opposite directions.
        let st = SwitchingStats::from_stream(&stream(2, &[0b01, 0b10, 0b01, 0b10]));
        assert_eq!(st.coupling_switching(0, 1), -1.0);
        assert_eq!(st.coupling_switching(1, 0), -1.0);
    }

    #[test]
    fn correlated_bits_have_positive_coupling() {
        let st = SwitchingStats::from_stream(&stream(2, &[0b00, 0b11, 0b00, 0b11]));
        assert_eq!(st.coupling_switching(0, 1), 1.0);
    }

    #[test]
    fn independent_bits_have_small_coupling() {
        // Bit 0 toggles every cycle, bit 1 every other cycle: the products
        // cancel over a full period.
        let st = SwitchingStats::from_stream(&stream(2, &[0b00, 0b01, 0b10, 0b11, 0b00]));
        assert!(st.coupling_switching(0, 1).abs() < 0.6);
    }

    #[test]
    fn diagonal_of_coupling_equals_self_switching() {
        let st = SwitchingStats::from_stream(&stream(3, &[1, 4, 2, 7, 0, 5]));
        for i in 0..3 {
            assert!((st.coupling_switching(i, i) - st.self_switching(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn t_matrix_combines_ts_and_tc() {
        let st = SwitchingStats::from_stream(&stream(2, &[0b00, 0b11, 0b00]));
        let t = st.t_matrix();
        // Fully correlated: Ts = 1, Tc(0,1) = 1 ⇒ off-diagonal of T is 0.
        assert_eq!(t[(0, 0)], 1.0);
        assert_eq!(t[(0, 1)], 0.0);
    }

    #[test]
    fn t_matrix_equals_explicit_eq3() {
        // T = Ts·1 − Tc with zero-diagonal Tc.
        let st = SwitchingStats::from_stream(&stream(3, &[1, 4, 2, 7, 0, 5, 3]));
        let explicit = &(&st.ts_matrix() * &Matrix::ones(3)) - &st.tc_matrix();
        let t = st.t_matrix();
        for i in 0..3 {
            for j in 0..3 {
                assert!((t[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn short_streams_have_zero_switching() {
        let st = SwitchingStats::from_stream(&stream(2, &[0b11]));
        assert_eq!(st.self_switching(0), 0.0);
        assert_eq!(st.bit_probability(0), 1.0);
        let st = SwitchingStats::from_stream(&BitStream::new(2).unwrap());
        assert_eq!(st.bit_probability(0), 0.0);
    }

    #[test]
    fn epsilons_centre_probabilities() {
        let st = SwitchingStats::from_stream(&stream(2, &[0b01, 0b01, 0b01, 0b00]));
        let eps = st.epsilons();
        assert!((eps[0] - 0.25).abs() < 1e-12);
        assert!((eps[1] + 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_parts_round_trips() {
        let st = SwitchingStats::from_parts(
            vec![0.5, 0.25],
            Matrix::from_rows(&[&[0.5, 0.1], &[0.1, 0.25]]),
            vec![0.5, 0.5],
        );
        assert_eq!(st.self_switching(1), 0.25);
        assert_eq!(st.coupling_switching(0, 1), 0.1);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn from_parts_validates_dims() {
        let _ = SwitchingStats::from_parts(vec![0.5], Matrix::zeros(2), vec![0.5, 0.5]);
    }
}

#[cfg(test)]
mod joint_tests {
    use super::*;

    fn stream(width: usize, words: &[u64]) -> BitStream {
        BitStream::from_words(width, words.to_vec()).expect("valid stream")
    }

    #[test]
    fn joint_switching_counts_simultaneous_toggles() {
        // Bits toggle together every cycle.
        let st = SwitchingStats::from_stream(&stream(2, &[0b00, 0b11, 0b00, 0b11]));
        assert_eq!(st.joint_switching(0, 1), 1.0);
        // Aligned ⇒ never opposite.
        assert_eq!(st.opposite_switching(0, 1), 0.0);
    }

    #[test]
    fn opposite_switching_detects_anticorrelation() {
        let st = SwitchingStats::from_stream(&stream(2, &[0b01, 0b10, 0b01, 0b10]));
        assert_eq!(st.joint_switching(0, 1), 1.0);
        assert_eq!(st.opposite_switching(0, 1), 1.0);
    }

    #[test]
    fn joint_diagonal_equals_self_switching() {
        let st = SwitchingStats::from_stream(&stream(3, &[1, 4, 2, 7, 0, 5]));
        for i in 0..3 {
            assert!((st.joint_switching(i, i) - st.self_switching(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn from_parts_falls_back_to_independence() {
        let st = SwitchingStats::from_parts(
            vec![0.5, 0.4],
            Matrix::from_rows(&[&[0.5, 0.1], &[0.1, 0.4]]),
            vec![0.5, 0.5],
        );
        assert!((st.joint_switching(0, 1) - 0.2).abs() < 1e-12);
        assert!((st.opposite_switching(0, 1) - 0.05).abs() < 1e-12);
        assert_eq!(st.joint_switching(1, 1), 0.4);
    }

    #[test]
    fn identities_hold_on_random_streams() {
        // P(same) + P(opposite) = P(both toggle); Tc = P(same) − P(opp).
        let words: Vec<u64> = (0..500u64).map(|t| (t * 193 + t * t * 7) & 0xF).collect();
        let st = SwitchingStats::from_stream(&stream(4, &words));
        for i in 0..4 {
            for j in 0..4 {
                if i == j {
                    continue;
                }
                let joint = st.joint_switching(i, j);
                let opp = st.opposite_switching(i, j);
                let same = joint - opp;
                assert!(
                    (st.coupling_switching(i, j) - (same - opp)).abs() < 1e-9,
                    "({i},{j})"
                );
                assert!(joint <= st.self_switching(i).min(st.self_switching(j)) + 1e-12);
            }
        }
    }
}

#[cfg(test)]
mod windowed_tests {
    use super::*;

    #[test]
    fn windows_cover_the_stream() {
        let words: Vec<u64> = (0..100u64).map(|t| t & 0xF).collect();
        let s = BitStream::from_words(4, words).unwrap();
        let windows = SwitchingStats::from_stream_windowed(&s, 30);
        assert_eq!(windows.len(), 4); // 30+30+30+10
        for w in &windows {
            assert_eq!(w.n(), 4);
        }
    }

    #[test]
    fn phased_stream_has_distinct_window_statistics() {
        // First half toggles bit 0, second half toggles bit 3.
        let mut words = Vec::new();
        for t in 0..100u64 {
            words.push(t & 1);
        }
        for t in 0..100u64 {
            words.push((t & 1) << 3);
        }
        let s = BitStream::from_words(4, words).unwrap();
        let w = SwitchingStats::from_stream_windowed(&s, 100);
        assert_eq!(w.len(), 2);
        assert!(w[0].self_switching(0) > 0.9 && w[0].self_switching(3) < 0.1);
        assert!(w[1].self_switching(3) > 0.9 && w[1].self_switching(0) < 0.1);
    }

    #[test]
    fn single_window_matches_whole_stream() {
        let words: Vec<u64> = (0..50u64).map(|t| (t * 13) & 0xFF).collect();
        let s = BitStream::from_words(8, words).unwrap();
        let whole = SwitchingStats::from_stream(&s);
        let windows = SwitchingStats::from_stream_windowed(&s, 1000);
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0], whole);
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_window_panics() {
        let s = BitStream::from_words(4, vec![0, 1]).unwrap();
        let _ = SwitchingStats::from_stream_windowed(&s, 0);
    }
}
