//! Property-based tests for streams, statistics and codem-facing
//! invariants of the stats crate.

use proptest::prelude::*;
use tsv3d_stats::dbt::DualBitTypeModel;
use tsv3d_stats::{BitStream, SwitchingStats};

/// Strategy: a stream of `width` bits with 2..=80 words.
fn stream(width: usize) -> impl Strategy<Value = BitStream> {
    let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
    prop::collection::vec(any::<u64>().prop_map(move |w| w & mask), 2..80)
        .prop_map(move |words| BitStream::from_words(width, words).expect("masked words fit"))
}

proptest! {
    #[test]
    fn probabilities_and_switching_are_within_bounds(s in stream(8)) {
        let st = SwitchingStats::from_stream(&s);
        for i in 0..8 {
            let p = st.bit_probability(i);
            prop_assert!((0.0..=1.0).contains(&p));
            let ts = st.self_switching(i);
            prop_assert!((0.0..=1.0).contains(&ts));
        }
    }

    #[test]
    fn coupling_is_symmetric_and_cauchy_schwarz_bounded(s in stream(6)) {
        let st = SwitchingStats::from_stream(&s);
        for i in 0..6 {
            for j in 0..6 {
                let tc = st.coupling_switching(i, j);
                prop_assert!((tc - st.coupling_switching(j, i)).abs() < 1e-12);
                let bound = (st.self_switching(i) * st.self_switching(j)).sqrt();
                prop_assert!(tc.abs() <= bound + 1e-9, "({i},{j}): {tc} vs {bound}");
            }
        }
    }

    #[test]
    fn global_inversion_preserves_switching_flips_probability(s in stream(8)) {
        // Inverting every word leaves Δb magnitudes identical and maps
        // p → 1 − p.
        let inverted = BitStream::from_words(
            8,
            s.iter().map(|w| !w & 0xFF).collect(),
        ).expect("masked");
        let a = SwitchingStats::from_stream(&s);
        let b = SwitchingStats::from_stream(&inverted);
        for i in 0..8 {
            prop_assert!((a.self_switching(i) - b.self_switching(i)).abs() < 1e-12);
            prop_assert!((a.bit_probability(i) + b.bit_probability(i) - 1.0).abs() < 1e-12);
            for j in 0..8 {
                prop_assert!(
                    (a.coupling_switching(i, j) - b.coupling_switching(i, j)).abs() < 1e-12
                );
            }
        }
    }

    #[test]
    fn multiplex_of_identical_streams_repeats_words(s in stream(5)) {
        let m = BitStream::multiplex(&[&s, &s]).expect("same widths");
        prop_assert_eq!(m.len(), 2 * s.len());
        for t in 0..s.len() {
            prop_assert_eq!(m.word(2 * t), s.word(t));
            prop_assert_eq!(m.word(2 * t + 1), s.word(t));
        }
    }

    #[test]
    fn pack_then_extract_recovers_streams(a in stream(4), b in stream(4)) {
        let packed = BitStream::pack(&[&a, &b]).expect("8 bits fit");
        let len = packed.len();
        prop_assert_eq!(len, a.len().min(b.len()));
        for t in 0..len {
            prop_assert_eq!(packed.word(t) & 0xF, a.word(t));
            prop_assert_eq!(packed.word(t) >> 4, b.word(t));
        }
    }

    #[test]
    fn stable_lines_never_switch(s in stream(4), vals in prop::collection::vec(any::<bool>(), 1..4)) {
        let wide = s.with_stable_lines(&vals).expect("fits in 64 bits");
        let st = SwitchingStats::from_stream(&wide);
        for (k, &v) in vals.iter().enumerate() {
            let bit = 4 + k;
            prop_assert_eq!(st.self_switching(bit), 0.0);
            prop_assert_eq!(st.bit_probability(bit), if v { 1.0 } else { 0.0 });
        }
    }

    #[test]
    fn dbt_statistics_are_always_valid(
        width in 2usize..20,
        sigma in 1.0f64..1e6,
        rho in -1.0f64..1.0,
    ) {
        let stats = DualBitTypeModel::new(width, sigma)
            .expect("valid width")
            .with_correlation(rho)
            .stats();
        for i in 0..width {
            prop_assert!((0.0..=1.0).contains(&stats.self_switching(i)));
            prop_assert_eq!(stats.bit_probability(i), 0.5);
            for j in 0..width {
                let bound = (stats.self_switching(i) * stats.self_switching(j)).sqrt();
                prop_assert!(stats.coupling_switching(i, j).abs() <= bound + 1e-9);
            }
        }
    }
}
