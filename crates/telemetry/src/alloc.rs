//! Allocation observability: a counting wrapper around the global
//! allocator plus the process-wide / thread-local statistics the rest
//! of the stack attributes to spans, bench cases and whole runs.
//!
//! # Design
//!
//! [`CountingAlloc`] wraps any [`GlobalAlloc`] (normally
//! [`System`]) and, *when counting is enabled*, maintains
//!
//! * **process-wide** relaxed atomics: allocation / deallocation /
//!   reallocation counts, cumulative requested bytes, live bytes and
//!   the live-bytes high-water mark ([`snapshot`], [`AllocStats`]);
//! * **thread-local** monotonic counters: bytes and allocations
//!   requested *by the current thread* ([`mark`] / [`delta_since`]) —
//!   the deterministic basis for per-span attribution, immune to what
//!   concurrent workers allocate.
//!
//! Counting is off by default. The `TSV3D_TELEMETRY` switch enables it
//! (via [`crate::TelemetryHandle::from_env`]), and the bench harness
//! enables it around its timed loop; a disabled allocator forwards to
//! the inner allocator behind a single relaxed load, so uninstrumented
//! runs keep their exact allocation behaviour and byte-identical
//! output.
//!
//! Installing a global allocator is necessarily a per-binary static:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: tsv3d_telemetry::alloc::CountingAlloc =
//!     tsv3d_telemetry::alloc::CountingAlloc::system();
//! ```
//!
//! The tsv3d workspace hosts this static in `tsv3d_experiments::obs`,
//! which every experiment binary links. Code that merely *reads* the
//! statistics must tolerate running without the allocator installed:
//! [`is_active`] reports whether readings are meaningful, and stays
//! `false` forever in binaries that never routed an allocation through
//! a [`CountingAlloc`].
//!
//! # Safety
//!
//! This module is the one place in the crate that needs `unsafe`: the
//! [`GlobalAlloc`] trait is an unsafe contract. The implementation
//! delegates every placement decision to the inner allocator untouched
//! and only *observes* sizes, so the contract is inherited, not
//! re-established. The bookkeeping itself never allocates (relaxed
//! atomics and const-initialised thread-locals), which keeps the
//! allocator re-entrancy-free; thread-local access goes through
//! `try_with` so allocations during TLS teardown degrade to
//! uncounted rather than aborting.

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};

/// Global switch: when `false`, [`CountingAlloc`] is a passthrough.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Set the first time any `CountingAlloc` services a request — the
/// signal that the binary actually routes allocations through us.
static INSTALLED: AtomicBool = AtomicBool::new(false);

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static DEALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static REALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TL_ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
    static TL_ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
}

/// A counting wrapper around a [`GlobalAlloc`], normally installed as
/// the `#[global_allocator]` of a binary (see the module docs).
///
/// All instances share one set of statistics — the process has one
/// allocator, the generic parameter only chooses what it forwards to.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc<A = System> {
    inner: A,
}

impl CountingAlloc<System> {
    /// The standard configuration: counts on top of [`System`].
    #[must_use]
    pub const fn system() -> Self {
        Self { inner: System }
    }
}

impl<A> CountingAlloc<A> {
    /// Wraps an arbitrary inner allocator.
    pub const fn new(inner: A) -> Self {
        Self { inner }
    }
}

// SAFETY: every placement decision (pointer, alignment, zeroing) is
// delegated verbatim to the inner allocator; this wrapper only reads
// layout sizes after the fact, and its bookkeeping never allocates.
unsafe impl<A: GlobalAlloc> GlobalAlloc for CountingAlloc<A> {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { self.inner.alloc(layout) };
        if !ptr.is_null() {
            note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { self.inner.alloc_zeroed(layout) };
        if !ptr.is_null() {
            note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { self.inner.dealloc(ptr, layout) };
        note_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { self.inner.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            note_realloc(layout.size(), new_size);
        }
        new_ptr
    }
}

#[inline]
fn mark_installed() {
    // A plain load-then-store keeps the hot path to one relaxed load
    // after the first allocation; racing stores all write `true`.
    if !INSTALLED.load(Relaxed) {
        INSTALLED.store(true, Relaxed);
    }
}

#[inline]
fn note_alloc(size: usize) {
    mark_installed();
    if !ENABLED.load(Relaxed) {
        return;
    }
    let size = size as u64;
    ALLOC_COUNT.fetch_add(1, Relaxed);
    ALLOC_BYTES.fetch_add(size, Relaxed);
    let live = LIVE_BYTES.fetch_add(size, Relaxed) + size;
    PEAK_BYTES.fetch_max(live, Relaxed);
    let _ = TL_ALLOC_BYTES.try_with(|c| c.set(c.get() + size));
    let _ = TL_ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
}

#[inline]
fn note_dealloc(size: usize) {
    mark_installed();
    if !ENABLED.load(Relaxed) {
        return;
    }
    DEALLOC_COUNT.fetch_add(1, Relaxed);
    // Saturating: a block allocated while counting was disabled may be
    // freed after enabling, and live-bytes must not wrap.
    let _ = LIVE_BYTES.fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_sub(size as u64)));
}

#[inline]
fn note_realloc(old_size: usize, new_size: usize) {
    mark_installed();
    if !ENABLED.load(Relaxed) {
        return;
    }
    REALLOC_COUNT.fetch_add(1, Relaxed);
    // Attribute the full new block to the requesting thread/process —
    // the same accounting a free + fresh alloc would produce.
    let new_size = new_size as u64;
    ALLOC_BYTES.fetch_add(new_size, Relaxed);
    let _ = LIVE_BYTES.fetch_update(Relaxed, Relaxed, |v| {
        Some(v.saturating_sub(old_size as u64) + new_size)
    });
    PEAK_BYTES.fetch_max(LIVE_BYTES.load(Relaxed), Relaxed);
    let _ = TL_ALLOC_BYTES.try_with(|c| c.set(c.get() + new_size));
    let _ = TL_ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
}

/// Turns counting on or off process-wide, returning the previous
/// state. [`crate::TelemetryHandle::from_env`] calls this for `json`
/// and `stderr` modes; the bench harness brackets its timed loop with
/// it.
pub fn set_enabled(on: bool) -> bool {
    ENABLED.swap(on, Relaxed)
}

/// `true` while counting is switched on.
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// `true` once any [`CountingAlloc`] has serviced a request — i.e. the
/// running binary actually installed the wrapper as its global
/// allocator.
#[must_use]
pub fn is_installed() -> bool {
    INSTALLED.load(Relaxed)
}

/// `true` when readings are meaningful: counting is enabled *and* the
/// wrapper is installed. Span close events and bench memory stats are
/// only produced under this predicate.
#[must_use]
pub fn is_active() -> bool {
    is_enabled() && is_installed()
}

/// A point-in-time copy of the process-wide allocation statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Allocations serviced (`alloc` + `alloc_zeroed`).
    pub alloc_count: u64,
    /// Deallocations serviced.
    pub dealloc_count: u64,
    /// Reallocations serviced.
    pub realloc_count: u64,
    /// Cumulative bytes requested (monotonic; reallocs add their full
    /// new size).
    pub alloc_bytes: u64,
    /// Bytes currently live (allocated minus freed, saturating).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` since enabling (or the last
    /// [`reset_peak`]).
    pub peak_bytes: u64,
}

/// Reads the process-wide statistics. All zeros while counting has
/// never been enabled.
#[must_use]
pub fn snapshot() -> AllocStats {
    AllocStats {
        alloc_count: ALLOC_COUNT.load(Relaxed),
        dealloc_count: DEALLOC_COUNT.load(Relaxed),
        realloc_count: REALLOC_COUNT.load(Relaxed),
        alloc_bytes: ALLOC_BYTES.load(Relaxed),
        live_bytes: LIVE_BYTES.load(Relaxed),
        peak_bytes: PEAK_BYTES.load(Relaxed),
    }
}

/// Rebases the high-water mark to the current live bytes, so a scoped
/// measurement (one bench case) reports its own peak instead of the
/// largest peak any earlier work reached.
pub fn reset_peak() {
    PEAK_BYTES.store(LIVE_BYTES.load(Relaxed), Relaxed);
}

/// A baseline for delta measurements: the calling thread's monotonic
/// counters plus the process peak, captured by [`mark`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocMark {
    thread_bytes: u64,
    thread_count: u64,
    peak: u64,
}

/// What happened between a [`mark`] and now ([`delta_since`]). All
/// fields derive from monotonic counters with saturating subtraction,
/// so they are never negative — nested spans always self-attribute
/// cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocDelta {
    /// Bytes the *current thread* requested since the mark.
    pub alloc_bytes: u64,
    /// Allocations the current thread made since the mark.
    pub alloc_count: u64,
    /// Growth of the process-wide live-bytes high-water mark since the
    /// mark (0 when the peak predates the mark).
    pub peak_delta: u64,
}

/// Captures the current thread's allocation counters and the process
/// peak as a baseline for [`delta_since`].
#[must_use]
pub fn mark() -> AllocMark {
    AllocMark {
        thread_bytes: TL_ALLOC_BYTES.try_with(Cell::get).unwrap_or(0),
        thread_count: TL_ALLOC_COUNT.try_with(Cell::get).unwrap_or(0),
        peak: PEAK_BYTES.load(Relaxed),
    }
}

/// The allocation activity since `mark` (see [`AllocDelta`]).
#[must_use]
pub fn delta_since(mark: &AllocMark) -> AllocDelta {
    AllocDelta {
        alloc_bytes: TL_ALLOC_BYTES
            .try_with(Cell::get)
            .unwrap_or(0)
            .saturating_sub(mark.thread_bytes),
        alloc_count: TL_ALLOC_COUNT
            .try_with(Cell::get)
            .unwrap_or(0)
            .saturating_sub(mark.thread_count),
        peak_delta: PEAK_BYTES.load(Relaxed).saturating_sub(mark.peak),
    }
}

/// [`mark`], but only when readings would be meaningful
/// ([`is_active`]); the form span instrumentation uses so binaries
/// without the allocator never emit all-zero memory fields.
#[must_use]
pub fn active_mark() -> Option<AllocMark> {
    if is_active() {
        Some(mark())
    } else {
        None
    }
}
