//! Live metrics export: point-in-time snapshots of a telemetry
//! registry rendered in the Prometheus text exposition format, plus a
//! std-only HTTP listener serving them.
//!
//! The exporter obeys the workspace determinism contract by
//! construction: [`MetricsSnapshot::capture`] copies the handle's
//! counter/histogram registries (the same snapshot API `tsv3d-bench`
//! serialises) and the allocator statistics, and the [`MetricsServer`]
//! answers every scrape from such a copy. The serve loop's only writes
//! are its own `serve.requests.*` bookkeeping counters — plain
//! registry increments, no events and no RNG — so the instrumented
//! workload cannot observe whether a scraper is attached and seeded
//! optimizer runs stay bit-identical with the listener up (pinned by
//! the `tsv3d-core` determinism property test). No lock is held while
//! a response is written.
//!
//! Everything here is `std`-only (`std::net::TcpListener`, hand-rolled
//! request parsing) — the same no-crates.io constraint as the rest of
//! the workspace.
//!
//! # Endpoints
//!
//! | path | response |
//! |---|---|
//! | `/metrics` | Prometheus text exposition format (version 0.0.4) |
//! | `/healthz` | `ok` — liveness for scripts and CI smoke jobs |
//! | `/runs`    | JSON array of recent run summaries (ledger-backed) |
//! | `/progress` | `tsv3d-pulse/v1` JSON: live per-restart progress |
//! | `/dash`    | live HTML dashboard (when a renderer is attached) |
//!
//! Every endpoint answers `HEAD` with the same status and headers as
//! `GET` (including an accurate `Content-Length`) and an empty body —
//! the probe shape load balancers and uptime checks use. Every
//! response carries `Content-Length`. Malformed request lines get
//! `400`, methods other than `GET`/`HEAD` get `405`, unknown paths
//! `404`; every response closes the connection.
//!
//! # Examples
//!
//! ```
//! use tsv3d_telemetry::{export, NullSink, TelemetryHandle};
//!
//! let tel = TelemetryHandle::with_sink(Box::new(NullSink));
//! tel.add("anneal.proposals", 8000);
//! let text = export::render_prometheus(&export::MetricsSnapshot::capture(&tel));
//! assert!(text.contains("tsv3d_anneal_proposals_total 8000"));
//! ```

use crate::alloc::{self, AllocStats};
use crate::pulse::{ProgressSnapshot, PULSE_SCHEMA};
use crate::{Histogram, TelemetryHandle};
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

/// A point-in-time copy of everything `/metrics` exposes.
///
/// Counters and histograms are **sorted by name** (the registries are
/// `BTreeMap`s and the copy preserves that order), so repeated scrapes
/// of an idle process — and golden tests — are byte-stable.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values, in name order.
    pub counters: Vec<(String, u64)>,
    /// Gauge values (last-write-wins `f64` readings, e.g. the power
    /// attribution figures), in name order.
    pub gauges: Vec<(String, f64)>,
    /// Histogram copies, in name order.
    pub histograms: Vec<(String, Histogram)>,
    /// Process-wide allocator statistics, when a counting allocator is
    /// installed and enabled ([`alloc::is_active`]).
    pub alloc: Option<AllocStats>,
    /// Seconds since the handle was created (0 for a disabled handle).
    pub uptime_seconds: f64,
    /// Build provenance stamped on the `tsv3d_build_info` gauge —
    /// the same revision the history ledger records. Empty (the
    /// `Default`) suppresses the gauge.
    pub git_rev: String,
    /// Live per-restart progress when the handle carries a
    /// [`Pulse`](crate::pulse::Pulse) — rendered as the
    /// `tsv3d_run_progress_*` / `tsv3d_run_stalled` gauges.
    pub progress: Option<ProgressSnapshot>,
}

impl MetricsSnapshot {
    /// Copies the handle's registries. A disabled handle yields an
    /// empty snapshot (uptime 0, no series) — `/metrics` still answers
    /// with a valid, nearly-empty exposition.
    pub fn capture(tel: &TelemetryHandle) -> Self {
        Self {
            counters: tel.counters_snapshot().into_iter().collect(),
            gauges: tel.gauges_snapshot().into_iter().collect(),
            histograms: tel.histograms_snapshot().into_iter().collect(),
            alloc: alloc::is_active().then(alloc::snapshot),
            uptime_seconds: tel.elapsed_seconds(),
            git_rev: build_git_rev().to_string(),
            progress: tel.pulse().map(|pulse| pulse.progress_snapshot()),
        }
    }
}

/// The build revision `/metrics` advertises, resolved once per process:
/// the `TSV3D_GIT_REV` environment variable when set (containers and CI
/// without a `.git`), else `git rev-parse --short HEAD`, else
/// `"unknown"` — mirroring what the bench reports stamp into the
/// history ledger, so a scrape and a ledger row can be correlated.
pub fn build_git_rev() -> &'static str {
    static REV: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    REV.get_or_init(|| {
        if let Ok(rev) = std::env::var("TSV3D_GIT_REV") {
            let rev = rev.trim().to_string();
            if !rev.is_empty() {
                return rev;
            }
        }
        std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string())
    })
}

/// Escapes a Prometheus label value: backslash, double quote and
/// newline are the three characters the exposition format requires
/// escaping in quoted label values.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Maps a registry name (`anneal.proposals`, `core.anneal`) to a
/// Prometheus metric-name fragment: every character outside
/// `[A-Za-z0-9_:]` becomes `_`. The exporter always prefixes `tsv3d_`,
/// so a leading digit in the input stays legal.
pub fn sanitize_metric_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Formats an `f64` for the exposition body. Rust's shortest-roundtrip
/// `Display` is deterministic for a given bit pattern, which is what
/// keeps repeated scrapes of unchanged state byte-identical.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

/// Renders the snapshot in the Prometheus text exposition format
/// (content type `text/plain; version=0.0.4`).
///
/// * counters → `tsv3d_<name>_total` (TYPE `counter`);
/// * gauges → `tsv3d_<name>` (TYPE `gauge`), rendered with the
///   shortest-roundtrip `f64` formatting;
/// * histograms → `tsv3d_<name>` with cumulative `_bucket{le="…"}`
///   series derived from the log2 buckets (each populated bucket
///   reports its upper edge `2^(exp+1)`), plus `_sum`/`_count`;
/// * allocator stats → `tsv3d_alloc_*` counters and
///   `tsv3d_live_bytes`/`tsv3d_peak_bytes` gauges;
/// * live progress (when a pulse is attached) →
///   `tsv3d_run_progress_iterations{restart="N"}` and friends, plus
///   the `tsv3d_run_stalled{restart="N"}` watchdog verdicts;
/// * `tsv3d_uptime_seconds` gauge and (when the snapshot carries a
///   revision) the `tsv3d_build_info{git_rev="…"} 1` provenance gauge.
///
/// Series order is fixed (uptime, build info, counters by name, gauges
/// by name, histograms by name, allocator block, progress block), so
/// two renders of equal snapshots are byte-identical.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# HELP tsv3d_uptime_seconds Seconds since the telemetry handle was created."
    );
    let _ = writeln!(out, "# TYPE tsv3d_uptime_seconds gauge");
    let _ = writeln!(out, "tsv3d_uptime_seconds {}", fmt_f64(snap.uptime_seconds));
    if !snap.git_rev.is_empty() {
        let _ = writeln!(
            out,
            "# HELP tsv3d_build_info Build provenance; the value is always 1."
        );
        let _ = writeln!(out, "# TYPE tsv3d_build_info gauge");
        let _ = writeln!(
            out,
            "tsv3d_build_info{{git_rev=\"{}\"}} 1",
            escape_label_value(&snap.git_rev)
        );
    }
    for (name, value) in &snap.counters {
        let metric = format!("tsv3d_{}_total", sanitize_metric_name(name));
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {value}");
    }
    for (name, value) in &snap.gauges {
        let metric = format!("tsv3d_{}", sanitize_metric_name(name));
        let _ = writeln!(out, "# TYPE {metric} gauge");
        let _ = writeln!(out, "{metric} {}", fmt_f64(*value));
    }
    for (name, hist) in &snap.histograms {
        let metric = format!("tsv3d_{}", sanitize_metric_name(name));
        let _ = writeln!(out, "# TYPE {metric} histogram");
        let mut cumulative = hist.zero_count();
        if cumulative > 0 {
            let _ = writeln!(out, "{metric}_bucket{{le=\"0\"}} {cumulative}");
        }
        for (exp, count) in hist.buckets() {
            cumulative += count;
            let upper = (f64::from(exp) + 1.0).exp2();
            let _ = writeln!(
                out,
                "{metric}_bucket{{le=\"{}\"}} {cumulative}",
                fmt_f64(upper)
            );
        }
        let _ = writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {}", hist.count());
        let _ = writeln!(out, "{metric}_sum {}", fmt_f64(hist.sum()));
        let _ = writeln!(out, "{metric}_count {}", hist.count());
    }
    if let Some(mem) = &snap.alloc {
        for (metric, kind, value) in [
            ("tsv3d_alloc_bytes_total", "counter", mem.alloc_bytes),
            ("tsv3d_alloc_count_total", "counter", mem.alloc_count),
            ("tsv3d_dealloc_count_total", "counter", mem.dealloc_count),
            ("tsv3d_realloc_count_total", "counter", mem.realloc_count),
            ("tsv3d_live_bytes", "gauge", mem.live_bytes),
            ("tsv3d_peak_bytes", "gauge", mem.peak_bytes),
        ] {
            let _ = writeln!(out, "# TYPE {metric} {kind}");
            let _ = writeln!(out, "{metric} {value}");
        }
    }
    if let Some(progress) = snap.progress.as_ref().filter(|p| !p.restarts.is_empty()) {
        type Series<'a> = (&'a str, &'a dyn Fn(&crate::pulse::RestartProgress) -> String);
        let series: [Series; 5] = [
            ("tsv3d_run_progress_iterations", &|r| r.iters_done.to_string()),
            ("tsv3d_run_progress_iterations_planned", &|r| {
                r.iters_planned.to_string()
            }),
            ("tsv3d_run_progress_best_power", &|r| fmt_f64(r.best_energy)),
            ("tsv3d_run_progress_accepts", &|r| r.accepts.to_string()),
            ("tsv3d_run_stalled", &|r| u64::from(r.stalled).to_string()),
        ];
        for (metric, value_of) in series {
            let _ = writeln!(out, "# TYPE {metric} gauge");
            for r in &progress.restarts {
                let _ = writeln!(
                    out,
                    "{metric}{{restart=\"{}\"}} {}",
                    r.restart,
                    value_of(r)
                );
            }
        }
    }
    out
}

/// Renders a progress snapshot as the `/progress` JSON document
/// (schema [`PULSE_SCHEMA`], `tsv3d-pulse/v1`) — the same shape
/// `tsv3d watch --format json` echoes. `None` (no pulse attached)
/// renders a valid document with an empty `restarts` array, so
/// scrapers never need to special-case a pulse-less server.
///
/// Non-finite best powers (a restart before its first beat reports
/// `+Inf`) serialize as `null`, keeping the body strict JSON.
pub fn render_progress_json(progress: Option<&ProgressSnapshot>, uptime_seconds: f64) -> String {
    let mut out = String::new();
    let (tick, stall_after, restarts) = match progress {
        Some(p) => (p.tick, p.stall_after, p.restarts.as_slice()),
        None => (0, crate::pulse::DEFAULT_STALL_AFTER, &[][..]),
    };
    let _ = write!(
        out,
        "{{\"schema\":\"{PULSE_SCHEMA}\",\"tick\":{tick},\"stall_after\":{stall_after},\
         \"uptime_s\":{},\"restarts\":[",
        json_f64(uptime_seconds)
    );
    for (i, r) in restarts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"restart\":{},\"iters_done\":{},\"iters_planned\":{},\"best_power\":{},\
             \"accepts\":{},\"heartbeat_tick\":{},\"improve_tick\":{},\"state\":\"{}\",\
             \"stalled\":{}}}",
            r.restart,
            r.iters_done,
            r.iters_planned,
            json_f64(r.best_energy),
            r.accepts,
            r.heartbeat_tick,
            r.improve_tick,
            r.state,
            r.stalled
        );
    }
    out.push_str("]}\n");
    out
}

/// JSON number formatting: finite values use Rust's shortest-roundtrip
/// `Display` (always a valid JSON number), non-finite become `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Producer of the `/runs` JSON body — a closure so the zero-dependency
/// telemetry crate never learns about ledger files; the CLI layer
/// injects one that reads `results/history.jsonl`.
pub type RunsJson = Arc<dyn Fn() -> String + Send + Sync>;

/// Producer of the `/dash` HTML body — the same injection pattern as
/// [`RunsJson`]: the CLI layer supplies a closure that renders the
/// `tsv3d dash` dashboard from a fresh in-process snapshot plus the
/// ledger, and this crate stays ignorant of the renderer. Without one,
/// `/dash` answers `404`.
pub type DashHtml = Arc<dyn Fn() -> String + Send + Sync>;

struct ServerShared {
    tel: TelemetryHandle,
    runs: Option<RunsJson>,
    dash: Option<DashHtml>,
    stop: AtomicBool,
    requests: AtomicU64,
}

/// A background HTTP listener serving [`MetricsSnapshot`]s.
///
/// One accept thread handles connections sequentially; scrapes are
/// cheap (snapshot + render) and the listener is an observability
/// side-channel, not a traffic path. Dropping the server without
/// [`shutdown`](Self::shutdown) detaches the thread (it keeps serving
/// until the process exits — the behaviour the `TSV3D_METRICS_ADDR`
/// wiring wants).
pub struct MetricsServer {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .field("requests", &self.requests_served())
            .finish()
    }
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`; port 0 picks a free port)
    /// and starts the accept thread. The handle is cloned — the server
    /// shares the caller's registry and observes whatever the
    /// instrumented run accumulates.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (`EADDRINUSE`, bad address, …).
    pub fn start(
        addr: impl ToSocketAddrs,
        tel: &TelemetryHandle,
        runs: Option<RunsJson>,
    ) -> std::io::Result<Self> {
        Self::start_with(addr, tel, runs, None)
    }

    /// [`start`](Self::start) plus an optional `/dash` HTML renderer.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (`EADDRINUSE`, bad address, …).
    pub fn start_with(
        addr: impl ToSocketAddrs,
        tel: &TelemetryHandle,
        runs: Option<RunsJson>,
        dash: Option<DashHtml>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            tel: tel.clone(),
            runs,
            dash,
            stop: AtomicBool::new(false),
            requests: AtomicU64::new(0),
        });
        let worker = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("tsv3d-metrics".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if worker.stop.load(Relaxed) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        handle_connection(stream, &worker);
                    }
                }
            })?;
        Ok(Self {
            addr,
            shared,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests answered so far (any status code).
    pub fn requests_served(&self) -> u64 {
        self.shared.requests.load(Relaxed)
    }

    /// Stops the accept loop and joins the thread. Idempotent-safe:
    /// consumes the server.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Relaxed);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Reads the request head (up to the blank line, capped at 16 KiB) and
/// returns the request line, or `None` for unreadable/empty input.
fn read_request_line(stream: &mut TcpStream) -> Option<String> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n")
                    || buf.windows(2).any(|w| w == b"\n\n")
                    || buf.len() > 16 * 1024
                {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    if buf.is_empty() {
        return None;
    }
    let end = buf
        .iter()
        .position(|&b| b == b'\n')
        .unwrap_or(buf.len());
    Some(String::from_utf8_lossy(&buf[..end]).trim_end().to_string())
}

/// Writes one full response. `head_only` (a `HEAD` request) sends the
/// identical status line and headers — `Content-Length` still counts
/// the body a `GET` would have returned — but omits the body itself.
fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
    head_only: bool,
) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    if !head_only {
        let _ = stream.write_all(body.as_bytes());
    }
    let _ = stream.flush();
}

fn handle_connection(mut stream: TcpStream, shared: &ServerShared) {
    shared.requests.fetch_add(1, Relaxed);
    let Some(line) = read_request_line(&mut stream) else {
        shared.tel.add("serve.requests.bad", 1);
        write_response(&mut stream, "400 Bad Request", "text/plain", "bad request\n", false);
        return;
    };
    // Request line: METHOD SP request-target SP HTTP-version.
    let mut parts = line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(t), Some(v), None) if v.starts_with("HTTP/") => (m, t, v),
        _ => {
            shared.tel.add("serve.requests.bad", 1);
            write_response(&mut stream, "400 Bad Request", "text/plain", "bad request\n", false);
            return;
        }
    };
    let _ = version;
    if method != "GET" && method != "HEAD" {
        shared.tel.add("serve.requests.bad", 1);
        write_response(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "only GET and HEAD are supported\n",
            false,
        );
        return;
    }
    let head_only = method == "HEAD";
    // Strip any query string; the endpoints take no parameters.
    let path = target.split('?').next().unwrap_or(target);
    // Resolve status/type/body first, then write once — GET and HEAD
    // share the exact computation, so a HEAD's Content-Length always
    // matches the body the GET would have carried.
    let (status, content_type, body) = match path {
        "/metrics" => {
            // Count before capturing so the exporter observes itself:
            // this very scrape appears in the body it returns.
            shared.tel.add("serve.requests.metrics", 1);
            (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                render_prometheus(&MetricsSnapshot::capture(&shared.tel)),
            )
        }
        "/healthz" => {
            shared.tel.add("serve.requests.healthz", 1);
            ("200 OK", "text/plain", "ok\n".to_string())
        }
        "/runs" => {
            shared.tel.add("serve.requests.runs", 1);
            let body = shared
                .runs
                .as_ref()
                .map_or_else(|| "[]\n".to_string(), |f| f());
            ("200 OK", "application/json", body)
        }
        "/progress" => {
            shared.tel.add("serve.requests.progress", 1);
            let progress = shared.tel.pulse().map(|pulse| pulse.progress_snapshot());
            (
                "200 OK",
                "application/json",
                render_progress_json(progress.as_ref(), shared.tel.elapsed_seconds()),
            )
        }
        "/dash" => match shared.dash.as_ref() {
            Some(render) => {
                shared.tel.add("serve.requests.dash", 1);
                ("200 OK", "text/html; charset=utf-8", render())
            }
            None => {
                shared.tel.add("serve.requests.bad", 1);
                (
                    "404 Not Found",
                    "text/plain",
                    "no dashboard renderer attached\n".to_string(),
                )
            }
        },
        _ => {
            shared.tel.add("serve.requests.bad", 1);
            ("404 Not Found", "text/plain", "not found\n".to_string())
        }
    };
    write_response(&mut stream, status, content_type, &body, head_only);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NullSink;

    #[test]
    fn sanitizer_maps_dots_and_dashes_to_underscores() {
        assert_eq!(sanitize_metric_name("anneal.proposals"), "anneal_proposals");
        assert_eq!(sanitize_metric_name("a-b c/d"), "a_b_c_d");
        assert_eq!(sanitize_metric_name("ok_name:42"), "ok_name:42");
    }

    #[test]
    fn disabled_handle_renders_an_empty_but_valid_exposition() {
        let snap = MetricsSnapshot::capture(&TelemetryHandle::disabled());
        assert!(snap.counters.is_empty() && snap.histograms.is_empty());
        let text = render_prometheus(&snap);
        assert!(text.starts_with("# HELP tsv3d_uptime_seconds"), "{text}");
        assert!(text.contains("tsv3d_uptime_seconds 0"), "{text}");
    }

    #[test]
    fn counters_render_sorted_with_total_suffix() {
        let tel = TelemetryHandle::with_sink(Box::new(NullSink));
        tel.add("b.second", 2);
        tel.add("a.first", 1);
        let text = render_prometheus(&MetricsSnapshot::capture(&tel));
        let a = text.find("tsv3d_a_first_total 1").expect("a present");
        let b = text.find("tsv3d_b_second_total 2").expect("b present");
        assert!(a < b, "name-sorted output:\n{text}");
    }

    #[test]
    fn gauges_render_between_counters_and_histograms() {
        let tel = TelemetryHandle::with_sink(Box::new(NullSink));
        tel.add("runs", 1);
        tel.set_gauge("power.total", 0.001953125);
        tel.set_gauge("power.self_charge", 0.5);
        tel.record("gap", 1.0);
        let text = render_prometheus(&MetricsSnapshot::capture(&tel));
        assert!(text.contains("# TYPE tsv3d_power_total gauge"), "{text}");
        assert!(text.contains("tsv3d_power_total 0.001953125"), "{text}");
        assert!(text.contains("tsv3d_power_self_charge 0.5"), "{text}");
        let counter = text.find("tsv3d_runs_total 1").expect("counter present");
        let gauge = text.find("tsv3d_power_self_charge 0.5").expect("gauge");
        let hist = text.find("# TYPE tsv3d_gap histogram").expect("histogram");
        assert!(counter < gauge && gauge < hist, "ordering:\n{text}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_log2_edges() {
        let tel = TelemetryHandle::with_sink(Box::new(NullSink));
        for v in [0.3, 0.3, 1.5, 3.0] {
            tel.record("gap", v);
        }
        let text = render_prometheus(&MetricsSnapshot::capture(&tel));
        // 0.3 twice → bucket -2 (upper edge 0.5); 1.5 → bucket 0 (edge
        // 2); 3.0 → bucket 1 (edge 4). Cumulative: 2, 3, 4.
        assert!(text.contains("tsv3d_gap_bucket{le=\"0.5\"} 2"), "{text}");
        assert!(text.contains("tsv3d_gap_bucket{le=\"2\"} 3"), "{text}");
        assert!(text.contains("tsv3d_gap_bucket{le=\"4\"} 4"), "{text}");
        assert!(text.contains("tsv3d_gap_bucket{le=\"+Inf\"} 4"), "{text}");
        assert!(text.contains("tsv3d_gap_count 4"), "{text}");
        assert!(text.contains("tsv3d_gap_sum 5.1"), "{text}");
    }

    #[test]
    fn zero_samples_get_their_own_bucket() {
        let tel = TelemetryHandle::with_sink(Box::new(NullSink));
        tel.record("h", 0.0);
        tel.record("h", 8.0);
        let text = render_prometheus(&MetricsSnapshot::capture(&tel));
        assert!(text.contains("tsv3d_h_bucket{le=\"0\"} 1"), "{text}");
        assert!(text.contains("tsv3d_h_bucket{le=\"16\"} 2"), "{text}");
    }

    #[test]
    fn alloc_stats_render_as_gauges_and_counters() {
        let snap = MetricsSnapshot {
            alloc: Some(AllocStats {
                alloc_count: 10,
                dealloc_count: 9,
                realloc_count: 1,
                alloc_bytes: 4096,
                live_bytes: 512,
                peak_bytes: 2048,
            }),
            ..MetricsSnapshot::default()
        };
        let text = render_prometheus(&snap);
        assert!(text.contains("tsv3d_alloc_bytes_total 4096"), "{text}");
        assert!(text.contains("tsv3d_live_bytes 512"), "{text}");
        assert!(text.contains("tsv3d_peak_bytes 2048"), "{text}");
    }

    #[test]
    fn build_info_renders_after_uptime_with_escaped_label() {
        let snap = MetricsSnapshot {
            git_rev: "abc\"def\\g\n".to_string(),
            ..MetricsSnapshot::default()
        };
        let text = render_prometheus(&snap);
        assert!(
            text.contains("tsv3d_build_info{git_rev=\"abc\\\"def\\\\g\\n\"} 1"),
            "{text}"
        );
        let uptime = text.find("tsv3d_uptime_seconds 0").expect("uptime");
        let info = text.find("tsv3d_build_info").expect("build info");
        assert!(uptime < info, "build info follows the uptime block:\n{text}");
    }

    #[test]
    fn empty_git_rev_suppresses_build_info() {
        let text = render_prometheus(&MetricsSnapshot::default());
        assert!(!text.contains("tsv3d_build_info"), "{text}");
    }

    #[test]
    fn captured_snapshots_always_carry_a_revision() {
        let snap = MetricsSnapshot::capture(&TelemetryHandle::disabled());
        assert!(
            !snap.git_rev.is_empty(),
            "capture falls back to `unknown`, never empty"
        );
        assert_eq!(snap.git_rev, build_git_rev());
    }

    #[test]
    fn progress_renders_labelled_gauges_after_the_alloc_block() {
        use crate::pulse::{ManualTicks, Pulse, TickSource};
        use std::sync::Arc;
        let ticks = Arc::new(ManualTicks::new());
        let pulse =
            Arc::new(Pulse::with_ticks(Arc::clone(&ticks) as Arc<dyn TickSource>));
        let c0 = pulse.cell(0);
        c0.begin(1000);
        c0.beat(250, 0.5, 17);
        pulse.cell(1).begin(1000);
        let snap = MetricsSnapshot {
            progress: Some(pulse.progress_snapshot()),
            ..MetricsSnapshot::default()
        };
        let text = render_prometheus(&snap);
        assert!(text.contains("# TYPE tsv3d_run_progress_iterations gauge"), "{text}");
        assert!(
            text.contains("tsv3d_run_progress_iterations{restart=\"0\"} 250"),
            "{text}"
        );
        assert!(
            text.contains("tsv3d_run_progress_iterations_planned{restart=\"1\"} 1000"),
            "{text}"
        );
        assert!(
            text.contains("tsv3d_run_progress_best_power{restart=\"0\"} 0.5"),
            "{text}"
        );
        assert!(
            text.contains("tsv3d_run_progress_best_power{restart=\"1\"} +Inf"),
            "{text}"
        );
        assert!(text.contains("tsv3d_run_stalled{restart=\"0\"} 0"), "{text}");
    }

    #[test]
    fn no_pulse_means_no_progress_series() {
        let text = render_prometheus(&MetricsSnapshot::default());
        assert!(!text.contains("tsv3d_run_progress"), "{text}");
        assert!(!text.contains("tsv3d_run_stalled"), "{text}");
    }

    #[test]
    fn progress_json_without_a_pulse_is_a_valid_empty_document() {
        let body = render_progress_json(None, 1.5);
        assert_eq!(
            body,
            "{\"schema\":\"tsv3d-pulse/v1\",\"tick\":0,\"stall_after\":40,\
             \"uptime_s\":1.5,\"restarts\":[]}\n"
        );
    }

    #[test]
    fn progress_json_serializes_restarts_with_null_for_unset_best() {
        use crate::pulse::{ManualTicks, Pulse, TickSource};
        use std::sync::Arc;
        let ticks = Arc::new(ManualTicks::new());
        let pulse =
            Arc::new(Pulse::with_ticks(Arc::clone(&ticks) as Arc<dyn TickSource>));
        let c0 = pulse.cell(0);
        c0.begin(100);
        ticks.advance(2);
        c0.beat(10, 42.5, 3);
        pulse.cell(1).begin(100); // never beats: best stays +Inf
        let snap = pulse.progress_snapshot();
        let body = render_progress_json(Some(&snap), 0.25);
        assert!(body.starts_with("{\"schema\":\"tsv3d-pulse/v1\",\"tick\":2,"), "{body}");
        assert!(body.contains("\"restart\":0"), "{body}");
        assert!(body.contains("\"best_power\":42.5"), "{body}");
        assert!(body.contains("\"best_power\":null"), "{body}");
        assert!(body.contains("\"state\":\"running\""), "{body}");
        assert!(body.ends_with("]}\n"), "{body}");
    }

    #[test]
    fn render_is_byte_identical_for_equal_snapshots() {
        let tel = TelemetryHandle::with_sink(Box::new(NullSink));
        tel.add("n", 3);
        tel.record("h", 1.25);
        let snap = MetricsSnapshot::capture(&tel);
        assert_eq!(render_prometheus(&snap), render_prometheus(&snap.clone()));
    }
}
