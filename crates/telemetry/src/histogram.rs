//! Log-bucketed histogram for durations and other non-negative values.

use std::collections::BTreeMap;

/// A power-of-two log-bucketed histogram.
///
/// Finite positive samples land in bucket `floor(log2(v))`; the
/// pathological inputs an instrumentation layer must survive — zero,
/// subnormals, infinities, NaN — are tracked in dedicated side
/// counters instead of being silently dropped or crashing the run.
///
/// # Examples
///
/// ```
/// use tsv3d_telemetry::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(3.0); // bucket 1: [2, 4)
/// h.record(3.5);
/// h.record(0.75); // bucket -1: [0.5, 1)
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket_count(1), 2);
/// assert_eq!(h.bucket_count(-1), 1);
/// assert!((h.mean() - (3.0 + 3.5 + 0.75) / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    /// `floor(log2(v))` → sample count, for finite positive `v`.
    buckets: BTreeMap<i16, u64>,
    zero: u64,
    negative: u64,
    infinite: u64,
    nan: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            ..Self::default()
        }
    }

    /// The bucket index of a finite positive value:
    /// `floor(log2(v))`, clamped to `i16` (subnormals reach −1074).
    fn bucket_of(v: f64) -> i16 {
        debug_assert!(v > 0.0 && v.is_finite());
        // `log2` of subnormals is exact enough for bucketing; clamp
        // defensively anyway.
        v.log2().floor().clamp(f64::from(i16::MIN), f64::from(i16::MAX)) as i16
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        if v.is_nan() {
            self.nan += 1;
            return;
        }
        if v.is_infinite() {
            self.infinite += 1;
            return;
        }
        if v < 0.0 {
            self.negative += 1;
            return;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v == 0.0 {
            self.zero += 1;
        } else {
            *self.buckets.entry(Self::bucket_of(v)).or_insert(0) += 1;
        }
    }

    /// Number of recorded finite, non-negative samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded finite, non-negative samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded sample (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest recorded sample (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Samples recorded as exactly zero.
    pub fn zero_count(&self) -> u64 {
        self.zero
    }

    /// Rejected negative samples.
    pub fn negative_count(&self) -> u64 {
        self.negative
    }

    /// Rejected infinite samples.
    pub fn infinite_count(&self) -> u64 {
        self.infinite
    }

    /// Rejected NaN samples.
    pub fn nan_count(&self) -> u64 {
        self.nan
    }

    /// Count in log bucket `exp` (covering `[2^exp, 2^(exp+1))`).
    pub fn bucket_count(&self, exp: i16) -> u64 {
        self.buckets.get(&exp).copied().unwrap_or(0)
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) from the log2
    /// buckets.
    ///
    /// The estimate walks the zero counter and the log buckets in
    /// ascending order until the cumulative count reaches
    /// `ceil(q · count)` and reports that bucket's upper edge
    /// `2^(exp+1)`, clamped into the observed `[min, max]` range so the
    /// estimate never leaves the data. Zero-valued samples report 0.
    /// The resolution is one octave — inherent to log2 bucketing — so
    /// the true quantile lies within a factor of 2 of the estimate.
    ///
    /// Returns `None` when the histogram is empty or `q` is NaN;
    /// `q ≤ 0` reports [`min`](Self::min) and `q ≥ 1` reports
    /// [`max`](Self::max).
    ///
    /// # Examples
    ///
    /// ```
    /// use tsv3d_telemetry::Histogram;
    ///
    /// let mut h = Histogram::new();
    /// for v in [1.0, 1.2, 1.7, 3.0, 100.0] {
    ///     h.record(v);
    /// }
    /// // 3 of 5 samples sit in bucket 0 = [1, 2): the median reports
    /// // that bucket's upper edge.
    /// assert_eq!(h.percentile(0.5), Some(2.0));
    /// assert_eq!(h.percentile(1.0), Some(100.0));
    /// ```
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || q.is_nan() {
            return None;
        }
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = self.zero;
        if seen >= rank {
            return Some(0.0);
        }
        for (&exp, &count) in &self.buckets {
            seen += count;
            if seen >= rank {
                let upper = (f64::from(exp) + 1.0).exp2();
                return Some(upper.clamp(self.min, self.max));
            }
        }
        // Unreachable while the side counters stay consistent; fall
        // back to the observed maximum rather than panicking.
        Some(self.max)
    }

    /// Iterates the populated `(bucket, count)` pairs in ascending
    /// bucket order.
    pub fn buckets(&self) -> impl Iterator<Item = (i16, u64)> + '_ {
        self.buckets.iter().map(|(&b, &c)| (b, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_floors() {
        let mut h = Histogram::new();
        for v in [1.0, 1.5, 1.99] {
            h.record(v);
        }
        h.record(2.0);
        h.record(0.5);
        assert_eq!(h.bucket_count(0), 3);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(-1), 1);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn zero_is_counted_separately() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(-0.0);
        assert_eq!(h.zero_count(), 2);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.buckets().count(), 0, "no log bucket for zero");
    }

    #[test]
    fn subnormals_land_in_deep_negative_buckets() {
        let mut h = Histogram::new();
        let sub = f64::MIN_POSITIVE / 4.0; // subnormal: 2^-1024
        assert!(sub > 0.0 && !sub.is_normal());
        h.record(sub);
        assert_eq!(h.count(), 1);
        assert_eq!(h.bucket_count(-1024), 1);
    }

    #[test]
    fn smallest_subnormal_does_not_overflow_the_bucket_index() {
        let mut h = Histogram::new();
        h.record(5e-324); // 2^-1074, the smallest positive f64
        assert_eq!(h.count(), 1);
        assert_eq!(h.bucket_count(-1074), 1);
    }

    #[test]
    fn non_finite_and_negative_samples_are_quarantined() {
        let mut h = Histogram::new();
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        h.record(f64::NAN);
        h.record(-1.0);
        h.record(2.0);
        assert_eq!(h.infinite_count(), 2);
        assert_eq!(h.nan_count(), 1);
        assert_eq!(h.negative_count(), 1);
        assert_eq!(h.count(), 1, "only the finite positive sample counts");
        assert_eq!(h.sum(), 2.0);
        assert!(h.mean() == 2.0 && h.min() == 2.0 && h.max() == 2.0);
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.min().is_infinite() && h.min() > 0.0);
        assert!(h.max().is_infinite() && h.max() < 0.0);
        assert_eq!(h.percentile(0.5), None);
    }

    #[test]
    fn percentile_walks_buckets_in_order() {
        let mut h = Histogram::new();
        // 8 samples: 4 in bucket 0 = [1, 2), 3 in bucket 2 = [4, 8),
        // 1 in bucket 4 = [16, 32).
        for v in [1.0, 1.1, 1.5, 1.9, 4.0, 5.0, 7.9, 17.0] {
            h.record(v);
        }
        // rank(0.5) = 4 falls on the last sample of bucket 0, whose
        // upper edge is 2.
        assert_eq!(h.percentile(0.5), Some(2.0));
        // rank(0.75) = 6 lands in bucket 2, upper edge 8.
        assert_eq!(h.percentile(0.75), Some(8.0));
        // rank(1.0) snaps to the exact observed max.
        assert_eq!(h.percentile(1.0), Some(17.0));
        assert_eq!(h.percentile(0.0), Some(1.0));
    }

    #[test]
    fn percentile_is_clamped_to_observed_range() {
        let mut h = Histogram::new();
        h.record(3.0); // bucket 1 = [2, 4), upper edge 4
        h.record(3.5);
        // The bucket's upper edge (4) exceeds the observed max (3.5):
        // the estimate must not exceed data actually seen.
        assert_eq!(h.percentile(0.5), Some(3.5));
    }

    #[test]
    fn percentile_reports_zero_for_the_zero_bucket() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(0.0);
        h.record(0.0);
        h.record(8.0);
        assert_eq!(h.percentile(0.5), Some(0.0));
        assert_eq!(h.percentile(0.99), Some(8.0));
    }

    #[test]
    fn percentile_exact_boundary_between_buckets() {
        let mut h = Histogram::new();
        h.record(1.0); // bucket 0
        h.record(4.0); // bucket 2
        // rank(0.5) = 1: exactly exhausts bucket 0 → its upper edge 2.
        assert_eq!(h.percentile(0.5), Some(2.0));
        // Anything past the midpoint must move to the upper bucket.
        assert_eq!(h.percentile(0.51), Some(4.0));
    }

    #[test]
    fn percentile_rejects_nan_q() {
        let mut h = Histogram::new();
        h.record(1.0);
        assert_eq!(h.percentile(f64::NAN), None);
    }
}
