//! `tsv3d-telemetry` — zero-dependency instrumentation for the tsv3d
//! workspace.
//!
//! The optimisers (simulated annealing, branch-and-bound), the
//! transient circuit engine and the experiment flow are hot loops that
//! previously ran as black boxes. This crate provides the shared
//! observability substrate they report into:
//!
//! * [`TelemetryHandle`] — a cheap, cloneable handle; a *disabled*
//!   handle (the default everywhere) reduces every instrumentation
//!   call to a branch on an `Option`, so uninstrumented runs pay
//!   effectively nothing;
//! * monotonic **span timers** ([`TelemetryHandle::span`]) feeding
//!   per-name duration [`Histogram`]s;
//! * **counters** ([`TelemetryHandle::add`]), **gauges**
//!   ([`TelemetryHandle::set_gauge`], last-write-wins `f64` readings)
//!   and **value histograms** ([`TelemetryHandle::record`]),
//!   log-bucketed;
//! * a pluggable [`Sink`] for event streams: [`NullSink`] (default),
//!   [`StderrSink`] (human-readable) and [`JsonLinesSink`]
//!   (machine-readable `.jsonl`);
//! * [`TelemetryHandle::from_env`] — the `TSV3D_TELEMETRY=json|stderr|off`
//!   switch every reproduction binary uses;
//! * the [`pulse`] module — *live-run* observability: lock-free
//!   per-restart progress cells, a span-stack sampling profiler and a
//!   stall watchdog, attached with [`TelemetryHandle::with_pulse`].
//!
//! **Determinism contract:** telemetry only *observes*. No RNG draw,
//! no floating-point value and no control-flow decision in the
//! instrumented code may depend on the handle, so seeded runs produce
//! bit-identical results with any sink attached (`tsv3d-core` enforces
//! this with a property test).
//!
//! The [`alloc`] module extends the same contract to *memory*: a
//! [`alloc::CountingAlloc`] global allocator feeds process-wide and
//! thread-local counters, and spans closing while counting is active
//! ([`alloc::is_active`]) stamp their events with
//! `alloc_bytes`/`alloc_count`/`peak_delta` deltas.
//!
//! # Examples
//!
//! ```
//! use tsv3d_telemetry::TelemetryHandle;
//!
//! let tel = TelemetryHandle::disabled();
//! {
//!     let _span = tel.span("stage.optimize"); // no-op: handle disabled
//! }
//! tel.add("nodes", 17);
//! assert!(!tel.is_enabled());
//! assert_eq!(tel.counter_value("nodes"), None);
//! ```

// `deny` rather than `forbid`: the [`alloc`] module implements the
// (unsafe by contract) `GlobalAlloc` trait and opts in locally; every
// other module stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod export;
mod histogram;
pub mod pulse;
mod sink;

pub use histogram::Histogram;
pub use sink::{push_json_str, Event, JsonLinesSink, NullSink, Sink, StderrSink};

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A telemetry field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (non-finite values serialise as `null`).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

struct Inner {
    sink: Box<dyn Sink>,
    epoch: Instant,
    counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    gauges: Mutex<BTreeMap<String, f64>>,
}

/// Cheap, cloneable entry point to the telemetry registry.
///
/// A disabled handle (the workspace-wide default) makes every method a
/// near-free early return; an enabled handle aggregates counters and
/// histograms in a shared registry and forwards events to its sink.
///
/// Handles may additionally carry a *thread label*
/// ([`with_thread_label`](Self::with_thread_label)): every event the
/// labelled handle emits — span events included — gains a `thread`
/// field, which is how concurrent workers writing to the one
/// `Mutex`-guarded sink stay distinguishable in the stream.
#[derive(Clone)]
pub struct TelemetryHandle {
    inner: Option<Arc<Inner>>,
    /// Worker label stamped on emitted events; `None` on unlabelled
    /// handles (the common case — serial code never pays for it).
    thread: Option<Arc<str>>,
    /// The live-run observability hub ([`pulse::Pulse`]) this handle
    /// publishes into, when one was attached with
    /// [`with_pulse`](Self::with_pulse). `None` (the default)
    /// compiles every pulse touch point down to a branch on an
    /// `Option` — the pre-pulse code path.
    pulse: Option<Arc<pulse::Pulse>>,
    /// This handle's span stack in the pulse's sampler registry;
    /// present exactly when `pulse` is.
    stack: Option<Arc<pulse::ThreadStack>>,
}

impl std::fmt::Debug for TelemetryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryHandle")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for TelemetryHandle {
    fn default() -> Self {
        Self::disabled()
    }
}

impl TelemetryHandle {
    /// The no-op handle: every instrumentation call is a cheap branch.
    pub fn disabled() -> Self {
        Self {
            inner: None,
            thread: None,
            pulse: None,
            stack: None,
        }
    }

    /// An enabled handle forwarding events to `sink`.
    pub fn with_sink(sink: Box<dyn Sink>) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                sink,
                epoch: Instant::now(),
                counters: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
            })),
            thread: None,
            pulse: None,
            stack: None,
        }
    }

    /// A handle sharing this one's registry and sink whose events (span
    /// events included) carry an extra `thread: label` field — the
    /// disambiguator trace analysis groups by when spans from
    /// concurrent workers interleave in a single stream.
    ///
    /// Counters and histograms stay shared (same registry); a disabled
    /// handle stays disabled, so labelling costs nothing on
    /// uninstrumented runs. With a pulse attached, the labelled handle
    /// additionally registers `label`'s span stack with the sampler.
    pub fn with_thread_label(&self, label: &str) -> TelemetryHandle {
        TelemetryHandle {
            inner: self.inner.clone(),
            thread: self.inner.is_some().then(|| Arc::from(label)),
            pulse: self.pulse.clone(),
            stack: self
                .pulse
                .as_ref()
                .filter(|_| self.inner.is_some())
                .map(|pulse| pulse.stack(label)),
        }
    }

    /// Attaches a live-run observability hub ([`pulse::Pulse`]): the
    /// handle (and every labelled handle derived from it) publishes
    /// span stacks into the pulse's sampler registry, and optimizers
    /// that find a pulse on their handle publish per-restart progress
    /// cells. A disabled handle stays disabled and ignores the pulse.
    ///
    /// Pulse rides the same determinism contract as sinks: attaching
    /// one must not change a single instrumented result.
    #[must_use]
    pub fn with_pulse(&self, pulse: Arc<pulse::Pulse>) -> TelemetryHandle {
        if self.inner.is_none() {
            return self.clone();
        }
        let stack = match self.thread.as_deref() {
            Some(label) => pulse.stack(label),
            None => pulse.stack("main"),
        };
        TelemetryHandle {
            inner: self.inner.clone(),
            thread: self.thread.clone(),
            pulse: Some(pulse),
            stack: Some(stack),
        }
    }

    /// The attached pulse, if any — how the optimizers and the metrics
    /// exporter find the progress registry.
    pub fn pulse(&self) -> Option<&Arc<pulse::Pulse>> {
        self.pulse.as_ref()
    }

    /// The worker label this handle stamps on events, if any.
    pub fn thread_label(&self) -> Option<&str> {
        self.thread.as_deref()
    }

    /// Builds a handle from the `TSV3D_TELEMETRY` environment switch:
    ///
    /// * `json` — [`JsonLinesSink`] writing
    ///   `results/<context>_telemetry.jsonl` (or the file named by
    ///   `TSV3D_TELEMETRY_PATH`);
    /// * `stderr` — [`StderrSink`];
    /// * `off`, empty or unset — disabled.
    ///
    /// Unknown values and sink-creation failures disable telemetry
    /// with a warning on stderr rather than failing the run.
    pub fn from_env(context: &str) -> Self {
        match std::env::var("TSV3D_TELEMETRY").as_deref() {
            Ok("json") | Ok("stderr") => {}
            _ => return Self::from_env_inner(context),
        }
        // An enabled run also switches on allocation counting, so span
        // events carry memory deltas wherever a `CountingAlloc` is the
        // global allocator (no-op passthrough otherwise).
        alloc::set_enabled(true);
        Self::from_env_inner(context)
    }

    fn from_env_inner(context: &str) -> Self {
        match std::env::var("TSV3D_TELEMETRY").as_deref() {
            Ok("json") => {
                let path = std::env::var("TSV3D_TELEMETRY_PATH")
                    .unwrap_or_else(|_| format!("results/{context}_telemetry.jsonl"));
                match JsonLinesSink::create(&path) {
                    Ok(sink) => Self::with_sink(Box::new(sink)),
                    Err(err) => {
                        eprintln!(
                            "warning: TSV3D_TELEMETRY=json but `{path}` is not writable \
                             ({err}); telemetry disabled"
                        );
                        Self::disabled()
                    }
                }
            }
            Ok("stderr") => Self::with_sink(Box::new(StderrSink)),
            Ok("off") | Ok("") | Err(_) => Self::disabled(),
            Ok(other) => {
                eprintln!(
                    "warning: unknown TSV3D_TELEMETRY value `{other}` \
                     (expected json|stderr|off); telemetry disabled"
                );
                Self::disabled()
            }
        }
    }

    /// `true` when a sink is attached.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `delta` to counter `name`.
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            let mut counters = inner.counters.lock().expect("counter registry poisoned");
            match counters.get_mut(name) {
                Some(slot) => *slot += delta,
                None => {
                    counters.insert(name.to_string(), delta);
                }
            }
        }
    }

    /// Sets gauge `name` to `value`, replacing any previous reading.
    ///
    /// Gauges are last-write-wins point-in-time values (a power figure,
    /// a queue depth) — unlike [`add`](Self::add) counters they do not
    /// accumulate. Non-finite values are stored as-is; the exporter
    /// renders them as `NaN`/`±Inf` per the exposition format.
    pub fn set_gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            let mut gauges = inner.gauges.lock().expect("gauge registry poisoned");
            match gauges.get_mut(name) {
                Some(slot) => *slot = value,
                None => {
                    gauges.insert(name.to_string(), value);
                }
            }
        }
    }

    /// Records `value` into histogram `name`.
    pub fn record(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            let mut histograms = inner.histograms.lock().expect("histogram registry poisoned");
            match histograms.get_mut(name) {
                Some(h) => h.record(value),
                None => {
                    let mut h = Histogram::new();
                    h.record(value);
                    histograms.insert(name.to_string(), h);
                }
            }
        }
    }

    /// Emits a structured event to the sink; a thread-labelled handle
    /// stamps its label onto the event's out-of-band `thread` slot
    /// (serialised by sinks as a trailing `thread` key), so labelled
    /// emission allocates nothing.
    pub fn event(&self, name: &str, fields: &[(&'static str, Value)]) {
        if let Some(inner) = &self.inner {
            inner.sink.emit(&Event {
                elapsed: inner.epoch.elapsed().as_secs_f64(),
                name,
                fields,
                thread: self.thread.as_deref(),
            });
        }
    }

    /// Starts a monotonic span timer; on drop the duration is recorded
    /// into histogram `name` and emitted as a `span` event (carrying
    /// the handle's thread label, if any).
    ///
    /// When allocation counting is active ([`alloc::is_active`]) the
    /// close event additionally carries `alloc_bytes` / `alloc_count`
    /// (this thread's requests while the span was open) and
    /// `peak_delta` (growth of the process live-bytes high-water
    /// mark). The deltas are cumulative over nested spans, exactly
    /// like wall time — trace analysis subtracts children to recover
    /// self-attribution.
    pub fn span(&self, name: &'static str) -> Span {
        if let Some(stack) = &self.stack {
            stack.push(name);
        }
        Span {
            inner: self.inner.as_ref().map(|inner| SpanInner {
                registry: Arc::clone(inner),
                name,
                thread: self.thread.clone(),
                stack: self.stack.clone(),
                alloc: alloc::active_mark(),
                start: Instant::now(),
            }),
        }
    }

    /// The current value of counter `name` (`None` when disabled or
    /// never incremented).
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        inner
            .counters
            .lock()
            .expect("counter registry poisoned")
            .get(name)
            .copied()
    }

    /// The current value of gauge `name` (`None` when disabled or
    /// never set).
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        let inner = self.inner.as_ref()?;
        inner
            .gauges
            .lock()
            .expect("gauge registry poisoned")
            .get(name)
            .copied()
    }

    /// A snapshot of histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        let inner = self.inner.as_ref()?;
        inner
            .histograms
            .lock()
            .expect("histogram registry poisoned")
            .get(name)
            .cloned()
    }

    /// A point-in-time copy of every counter, in name order. Empty for
    /// a disabled handle.
    ///
    /// This is the export surface for harnesses (e.g. `tsv3d-bench`)
    /// that serialise a run's counters next to its timings.
    pub fn counters_snapshot(&self) -> BTreeMap<String, u64> {
        match &self.inner {
            Some(inner) => inner
                .counters
                .lock()
                .expect("counter registry poisoned")
                .clone(),
            None => BTreeMap::new(),
        }
    }

    /// A point-in-time copy of every histogram, in name order. Empty
    /// for a disabled handle.
    ///
    /// Together with [`Histogram::buckets`] and
    /// [`Histogram::percentile`] this makes the full aggregation state
    /// reachable from other crates instead of being summarisable only
    /// through [`summary`](Self::summary).
    pub fn histograms_snapshot(&self) -> BTreeMap<String, Histogram> {
        match &self.inner {
            Some(inner) => inner
                .histograms
                .lock()
                .expect("histogram registry poisoned")
                .clone(),
            None => BTreeMap::new(),
        }
    }

    /// A point-in-time copy of every gauge, in name order. Empty for
    /// a disabled handle.
    pub fn gauges_snapshot(&self) -> BTreeMap<String, f64> {
        match &self.inner {
            Some(inner) => inner
                .gauges
                .lock()
                .expect("gauge registry poisoned")
                .clone(),
            None => BTreeMap::new(),
        }
    }

    /// Seconds since the handle was created (0 when disabled).
    pub fn elapsed_seconds(&self) -> f64 {
        self.inner
            .as_ref()
            .map_or(0.0, |inner| inner.epoch.elapsed().as_secs_f64())
    }

    /// Renders a fixed-width, human-readable digest of every counter
    /// and histogram — the "timing footer" the experiment binaries
    /// append to their tables. Empty string when disabled.
    pub fn summary(&self) -> String {
        let Some(inner) = &self.inner else {
            return String::new();
        };
        let counters = inner.counters.lock().expect("counter registry poisoned");
        let histograms = inner.histograms.lock().expect("histogram registry poisoned");
        let gauges = inner.gauges.lock().expect("gauge registry poisoned");
        let mut out = String::new();
        let _ = writeln!(
            out,
            "telemetry summary (wall {:.3} s)",
            inner.epoch.elapsed().as_secs_f64()
        );
        if !counters.is_empty() {
            let width = counters.keys().map(|k| k.len()).max().unwrap_or(0);
            let _ = writeln!(out, "  counters:");
            for (name, value) in counters.iter() {
                let _ = writeln!(out, "    {name:<width$}  {value}");
            }
        }
        if !gauges.is_empty() {
            let width = gauges.keys().map(|k| k.len()).max().unwrap_or(0);
            let _ = writeln!(out, "  gauges:");
            for (name, value) in gauges.iter() {
                let _ = writeln!(out, "    {name:<width$}  {value:.6e}");
            }
        }
        if !histograms.is_empty() {
            let width = histograms.keys().map(|k| k.len()).max().unwrap_or(0);
            let _ = writeln!(out, "  timings/values:");
            for (name, h) in histograms.iter() {
                let _ = writeln!(
                    out,
                    "    {name:<width$}  n={:<6} total {:<12.6e} mean {:<12.6e} \
                     min {:<12.6e} max {:.6e}",
                    h.count(),
                    h.sum(),
                    h.mean(),
                    if h.count() == 0 { 0.0 } else { h.min() },
                    if h.count() == 0 { 0.0 } else { h.max() },
                );
            }
        }
        out
    }

    /// Flushes the sink.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }
}

struct SpanInner {
    registry: Arc<Inner>,
    name: &'static str,
    thread: Option<Arc<str>>,
    /// The pulse span stack this span pushed onto at open (popped on
    /// drop); `None` without an attached pulse.
    stack: Option<Arc<pulse::ThreadStack>>,
    /// Allocation baseline captured at open; `None` when counting was
    /// inactive, so binaries without the allocator never emit zeros.
    alloc: Option<alloc::AllocMark>,
    start: Instant,
}

/// A running span timer; the measurement ends when it is dropped.
///
/// Returned by [`TelemetryHandle::span`]. For a disabled handle this
/// is inert (not even the clock is read).
#[must_use = "a span measures the scope it is alive in"]
pub struct Span {
    inner: Option<SpanInner>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(span) = self.inner.take() {
            let seconds = span.start.elapsed().as_secs_f64();
            // Leave the sampler's stack before any bookkeeping below:
            // a sample taken during histogram/emit work would otherwise
            // attribute it to a span that has already ended.
            if let Some(stack) = &span.stack {
                stack.pop(span.name);
            }
            // Read the allocation deltas before any bookkeeping below
            // allocates (histogram inserts, the fields vector): the
            // measurement must cover only the span's own scope, which
            // is also what makes single-threaded deltas repeatable.
            let alloc_delta = span.alloc.as_ref().map(alloc::delta_since);
            {
                let mut histograms = span
                    .registry
                    .histograms
                    .lock()
                    .expect("histogram registry poisoned");
                match histograms.get_mut(span.name) {
                    Some(h) => h.record(seconds),
                    None => {
                        let mut h = Histogram::new();
                        h.record(seconds);
                        histograms.insert(span.name.to_string(), h);
                    }
                }
            }
            let mut fields = vec![
                ("name", Value::Str(span.name.to_string())),
                ("seconds", Value::F64(seconds)),
            ];
            if let Some(delta) = alloc_delta {
                fields.push(("alloc_bytes", Value::U64(delta.alloc_bytes)));
                fields.push(("alloc_count", Value::U64(delta.alloc_count)));
                fields.push(("peak_delta", Value::U64(delta.peak_delta)));
            }
            span.registry.sink.emit(&Event {
                elapsed: span.registry.epoch.elapsed().as_secs_f64(),
                name: "span",
                fields: &fields,
                thread: span.thread.as_deref(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = TelemetryHandle::disabled();
        tel.add("c", 5);
        tel.record("h", 1.0);
        tel.set_gauge("g", 2.5);
        tel.event("e", &[("k", Value::U64(1))]);
        drop(tel.span("s"));
        assert_eq!(tel.counter_value("c"), None);
        assert_eq!(tel.gauge_value("g"), None);
        assert!(tel.histogram("h").is_none());
        assert!(tel.gauges_snapshot().is_empty());
        assert_eq!(tel.summary(), "");
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let tel = TelemetryHandle::with_sink(Box::new(NullSink));
        tel.set_gauge("power.total", 1.5);
        tel.set_gauge("power.total", 0.75);
        tel.set_gauge("power.self_charge", 0.25);
        assert_eq!(tel.gauge_value("power.total"), Some(0.75));
        let snapshot = tel.gauges_snapshot();
        assert_eq!(
            snapshot.into_iter().collect::<Vec<_>>(),
            vec![
                ("power.self_charge".to_string(), 0.25),
                ("power.total".to_string(), 0.75),
            ]
        );
        let summary = tel.summary();
        assert!(summary.contains("gauges:"), "{summary}");
        assert!(summary.contains("power.total"), "{summary}");
    }

    #[test]
    fn counters_and_histograms_aggregate() {
        let tel = TelemetryHandle::with_sink(Box::new(NullSink));
        tel.add("nodes", 3);
        tel.add("nodes", 4);
        tel.record("gap", 0.5);
        tel.record("gap", 2.0);
        assert_eq!(tel.counter_value("nodes"), Some(7));
        let h = tel.histogram("gap").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 2.5);
        let summary = tel.summary();
        assert!(summary.contains("nodes"), "{summary}");
        assert!(summary.contains("gap"), "{summary}");
    }

    #[test]
    fn spans_record_durations() {
        let tel = TelemetryHandle::with_sink(Box::new(NullSink));
        {
            let _span = tel.span("work");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let h = tel.histogram("work").unwrap();
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 0.002, "span measured {:.6}s", h.sum());
    }

    #[test]
    fn snapshots_copy_the_registry_state() {
        let tel = TelemetryHandle::with_sink(Box::new(NullSink));
        tel.add("a", 1);
        tel.add("b", 2);
        tel.record("h", 4.0);
        let counters = tel.counters_snapshot();
        assert_eq!(
            counters.into_iter().collect::<Vec<_>>(),
            vec![("a".to_string(), 1), ("b".to_string(), 2)]
        );
        let histograms = tel.histograms_snapshot();
        assert_eq!(histograms.len(), 1);
        assert_eq!(histograms["h"].count(), 1);
        // The snapshot is a copy: later mutation must not show up.
        tel.add("a", 10);
        let counters = tel.counters_snapshot();
        assert_eq!(counters["a"], 11);
    }

    #[test]
    fn disabled_handle_snapshots_are_empty() {
        let tel = TelemetryHandle::disabled();
        tel.add("a", 1);
        assert!(tel.counters_snapshot().is_empty());
        assert!(tel.histograms_snapshot().is_empty());
    }

    #[test]
    fn clones_share_one_registry() {
        let tel = TelemetryHandle::with_sink(Box::new(NullSink));
        let clone = tel.clone();
        clone.add("shared", 1);
        tel.add("shared", 1);
        assert_eq!(tel.counter_value("shared"), Some(2));
    }

    /// One captured event: its name, owned fields, and thread label.
    type CapturedEvent = (String, Vec<(&'static str, Value)>, Option<String>);

    /// Captures emitted events as `(name, fields, thread)` triples.
    struct CaptureSink(Mutex<Vec<CapturedEvent>>);

    impl Sink for CaptureSink {
        fn emit(&self, event: &Event<'_>) {
            self.0.lock().unwrap().push((
                event.name.to_string(),
                event.fields.to_vec(),
                event.thread.map(str::to_string),
            ));
        }
    }

    #[test]
    fn thread_labelled_handles_stamp_events_and_spans() {
        let sink = Arc::new(CaptureSink(Mutex::new(Vec::new())));
        struct Fwd(Arc<CaptureSink>);
        impl Sink for Fwd {
            fn emit(&self, event: &Event<'_>) {
                self.0.emit(event);
            }
        }
        let tel = TelemetryHandle::with_sink(Box::new(Fwd(Arc::clone(&sink))));
        let worker = tel.with_thread_label("r1");
        assert_eq!(worker.thread_label(), Some("r1"));
        assert_eq!(tel.thread_label(), None);

        tel.event("plain", &[("k", Value::U64(1))]);
        worker.event("labelled", &[("k", Value::U64(2))]);
        drop(worker.span("work"));

        let events = sink.0.lock().unwrap();
        assert_eq!(events[0].0, "plain");
        assert_eq!(events[0].2, None);
        // The label rides the out-of-band slot, never the fields.
        assert!(events.iter().all(|e| e.1.iter().all(|(k, _)| *k != "thread")));
        assert_eq!(events[1].0, "labelled");
        assert_eq!(events[1].2.as_deref(), Some("r1"));
        assert_eq!(events[2].0, "span");
        assert_eq!(events[2].2.as_deref(), Some("r1"));
    }

    #[test]
    fn pulse_handles_publish_span_stacks() {
        let pulse = Arc::new(pulse::Pulse::with_ticks(Arc::new(
            pulse::ManualTicks::new(),
        )));
        let tel =
            TelemetryHandle::with_sink(Box::new(NullSink)).with_pulse(Arc::clone(&pulse));
        assert!(tel.pulse().is_some());
        let worker = tel.with_thread_label("r0");
        assert!(worker.pulse().is_some(), "labels inherit the pulse");

        let outer = tel.span("outer");
        let inner = worker.span("inner");
        let mut profile = pulse::SampledProfile::default();
        pulse.sample_once(&mut profile);
        drop(inner);
        drop(outer);
        pulse.sample_once(&mut profile);

        assert_eq!(profile.counts["main;outer"], 1);
        assert_eq!(profile.counts["r0;inner"], 1);
        assert_eq!(profile.samples, 2);
        // Closed spans left their stacks: the second sample saw nothing.
        assert_eq!(profile.counts.values().sum::<u64>(), 2);
    }

    #[test]
    fn pulse_on_a_disabled_handle_is_ignored() {
        let pulse = Arc::new(pulse::Pulse::new());
        let tel = TelemetryHandle::disabled().with_pulse(Arc::clone(&pulse));
        assert!(!tel.is_enabled());
        assert!(tel.pulse().is_none());
        drop(tel.span("work"));
        let mut profile = pulse::SampledProfile::default();
        pulse.sample_once(&mut profile);
        assert!(profile.counts.is_empty());
    }

    #[test]
    fn labelled_handles_share_the_registry_and_disabled_stays_disabled() {
        let tel = TelemetryHandle::with_sink(Box::new(NullSink));
        let worker = tel.with_thread_label("w0");
        worker.add("shared", 2);
        tel.add("shared", 1);
        assert_eq!(tel.counter_value("shared"), Some(3));

        let off = TelemetryHandle::disabled().with_thread_label("w1");
        assert!(!off.is_enabled());
        assert_eq!(off.thread_label(), None);
    }
}
