//! `tsv3d-pulse`: live-run observability — lock-free progress cells,
//! a span-stack sampling profiler, and a stall watchdog.
//!
//! Everything before this module answers questions *after* a run
//! finishes (traces, histories, convergence reports). Pulse answers
//! them *during* the run, under the same determinism contract as the
//! rest of the crate: pulse only observes. No RNG draw, float value or
//! control-flow decision in instrumented code may depend on it, so
//! seeded runs are bit-identical with pulse on or off — pinned by the
//! `pulse_determinism` proptest in `tsv3d-core`.
//!
//! Three pieces:
//!
//! * [`ProgressCell`] / [`Pulse::cell`] — one set of atomics per
//!   restart (iterations done/planned, best-energy bits, accepts,
//!   heartbeat tick). The annealer's move loop updates its cell with
//!   plain relaxed stores at epoch boundaries: zero allocation, no
//!   lock, no syscall on the hot path.
//! * [`StackRegistry`] / [`ThreadStack`] — each instrumented thread
//!   registers its live span stack (span open pushes, span close
//!   pops); a [`Sampler`] thread snapshots every stack on a fixed
//!   period into collapsed-stack counts ([`SampledProfile`]) — a
//!   wall-clock profile of a real run without any per-event cost.
//! * the stall watchdog ([`ProgressSnapshot`]) — a restart with no
//!   heartbeat *and* no best-energy improvement for
//!   [`Pulse::stall_after`] ticks is flagged `stalled`, surfaced via
//!   the `/progress` endpoint and the `tsv3d_run_stalled` gauge.
//!
//! Ticks come from an injected [`TickSource`] so tests drive the
//! watchdog and sampler deterministically with [`ManualTicks`];
//! production uses [`WallTicks`] (one tick per fixed wall-clock
//! period, default 250 ms).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Schema tag of the `/progress` JSON document and the `tsv3d watch`
/// `--format json` output.
pub const PULSE_SCHEMA: &str = "tsv3d-pulse/v1";

/// Default watchdog threshold, in ticks: a running restart whose
/// heartbeat *and* best-energy improvement are both older than this
/// many ticks is flagged stalled. At the default 250 ms tick period
/// this is 10 s of silence.
pub const DEFAULT_STALL_AFTER: u64 = 40;

/// Default wall-clock tick period of [`WallTicks`].
pub const DEFAULT_TICK_PERIOD: Duration = Duration::from_millis(250);

/// A monotone tick counter — the watchdog's and sampler's clock.
///
/// Injected rather than read from `Instant` directly so tests can
/// advance time deterministically ([`ManualTicks`]).
pub trait TickSource: Send + Sync {
    /// The current tick. Must be monotone non-decreasing.
    fn now(&self) -> u64;
}

/// Wall-clock ticks: one tick per `period` since construction.
pub struct WallTicks {
    epoch: Instant,
    period: Duration,
}

impl WallTicks {
    /// Ticks at `period` intervals, starting now.
    pub fn new(period: Duration) -> Self {
        Self {
            epoch: Instant::now(),
            period: period.max(Duration::from_millis(1)),
        }
    }
}

impl Default for WallTicks {
    fn default() -> Self {
        Self::new(DEFAULT_TICK_PERIOD)
    }
}

impl TickSource for WallTicks {
    fn now(&self) -> u64 {
        (self.epoch.elapsed().as_nanos() / self.period.as_nanos().max(1)) as u64
    }
}

/// A hand-driven tick counter for deterministic tests.
#[derive(Default)]
pub struct ManualTicks(AtomicU64);

impl ManualTicks {
    /// Starts at tick 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `ticks`.
    pub fn advance(&self, ticks: u64) {
        self.0.fetch_add(ticks, Ordering::Relaxed);
    }
}

impl TickSource for ManualTicks {
    fn now(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Restart lifecycle states stored in [`ProgressCell::state`].
const STATE_IDLE: u64 = 0;
const STATE_RUNNING: u64 = 1;
const STATE_DONE: u64 = 2;

/// Per-restart progress: a handful of atomics the annealer updates
/// with relaxed stores and observers read with relaxed loads.
///
/// The fields are independently-updated gauges, not a consistent
/// tuple — a reader may see `iters_done` from one epoch and
/// `best_bits` from the next. That is fine for progress display and
/// the watchdog; nothing downstream does arithmetic that needs a
/// consistent cut.
#[derive(Debug, Default)]
pub struct ProgressCell {
    /// Move-loop iterations completed so far.
    iters_done: AtomicU64,
    /// Iterations this restart will run in total.
    iters_planned: AtomicU64,
    /// `f64::to_bits` of the best energy seen so far (`f64::INFINITY`
    /// bits until the first update).
    best_bits: AtomicU64,
    /// Accepted moves so far.
    accepts: AtomicU64,
    /// Tick of the most recent update of any kind.
    heartbeat_tick: AtomicU64,
    /// Tick of the most recent *best-energy improvement*.
    improve_tick: AtomicU64,
    /// Lifecycle: 0 idle, 1 running, 2 done.
    state: AtomicU64,
}

impl ProgressCell {
    fn new() -> Self {
        let cell = Self::default();
        cell.best_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        cell.state.store(STATE_IDLE, Ordering::Relaxed);
        cell
    }
}

/// A restart's writing end of its [`ProgressCell`], with the pulse's
/// tick source attached: everything the annealer needs, fetched once
/// per restart *outside* the move loop.
#[derive(Clone)]
pub struct RestartCell {
    cell: Arc<ProgressCell>,
    ticks: Arc<dyn TickSource>,
}

impl std::fmt::Debug for RestartCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RestartCell").finish()
    }
}

impl RestartCell {
    /// Marks the restart running and records its iteration budget.
    pub fn begin(&self, iters_planned: u64) {
        let now = self.ticks.now();
        self.cell.iters_planned.store(iters_planned, Ordering::Relaxed);
        self.cell.iters_done.store(0, Ordering::Relaxed);
        self.cell.accepts.store(0, Ordering::Relaxed);
        self.cell
            .best_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.cell.heartbeat_tick.store(now, Ordering::Relaxed);
        self.cell.improve_tick.store(now, Ordering::Relaxed);
        self.cell.state.store(STATE_RUNNING, Ordering::Relaxed);
    }

    /// Publishes one progress beat: iterations done, current best
    /// energy and accepted-move count. All relaxed stores; the only
    /// branch is the improvement check feeding the watchdog.
    pub fn beat(&self, iters_done: u64, best_energy: f64, accepts: u64) {
        let now = self.ticks.now();
        let cell = &*self.cell;
        cell.iters_done.store(iters_done, Ordering::Relaxed);
        cell.accepts.store(accepts, Ordering::Relaxed);
        let bits = best_energy.to_bits();
        let prev = cell.best_bits.swap(bits, Ordering::Relaxed);
        if prev != bits {
            cell.improve_tick.store(now, Ordering::Relaxed);
        }
        cell.heartbeat_tick.store(now, Ordering::Relaxed);
    }

    /// Marks the restart finished (never flagged stalled again).
    pub fn finish(&self) {
        self.cell
            .heartbeat_tick
            .store(self.ticks.now(), Ordering::Relaxed);
        self.cell.state.store(STATE_DONE, Ordering::Relaxed);
    }
}

/// A point-in-time reading of one restart's progress.
#[derive(Debug, Clone, PartialEq)]
pub struct RestartProgress {
    /// Restart index (the `rN` thread label's N).
    pub restart: usize,
    /// Iterations completed.
    pub iters_done: u64,
    /// Iterations planned.
    pub iters_planned: u64,
    /// Best energy seen (`f64::INFINITY` before the first beat).
    pub best_energy: f64,
    /// Accepted moves.
    pub accepts: u64,
    /// Tick of the last beat.
    pub heartbeat_tick: u64,
    /// Tick of the last best-energy improvement.
    pub improve_tick: u64,
    /// `"idle"`, `"running"` or `"done"`.
    pub state: &'static str,
    /// Watchdog verdict at snapshot time.
    pub stalled: bool,
}

/// A point-in-time reading of every restart, plus the clock state the
/// verdicts were made under.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProgressSnapshot {
    /// The tick the snapshot was taken at.
    pub tick: u64,
    /// The watchdog threshold the `stalled` flags used.
    pub stall_after: u64,
    /// Per-restart progress, in restart order.
    pub restarts: Vec<RestartProgress>,
}

impl ProgressSnapshot {
    /// Count of restarts flagged stalled.
    pub fn stalled_count(&self) -> usize {
        self.restarts.iter().filter(|r| r.stalled).count()
    }

    /// `true` once every registered restart is done.
    pub fn all_done(&self) -> bool {
        !self.restarts.is_empty() && self.restarts.iter().all(|r| r.state == "done")
    }
}

/// The registry of per-restart [`ProgressCell`]s.
///
/// Registration and snapshotting lock a mutex; the per-beat hot path
/// never does — it works on the `Arc`'d cell handed out by
/// [`Pulse::cell`].
#[derive(Default)]
pub struct ProgressRegistry {
    cells: Mutex<Vec<Arc<ProgressCell>>>,
}

impl ProgressRegistry {
    /// The cell for `restart`, created (along with any gap) on first
    /// use. Called once per restart at setup, never in the move loop.
    fn cell(&self, restart: usize) -> Arc<ProgressCell> {
        let mut cells = self.cells.lock().expect("progress registry poisoned");
        while cells.len() <= restart {
            cells.push(Arc::new(ProgressCell::new()));
        }
        Arc::clone(&cells[restart])
    }

    fn snapshot(&self, now: u64, stall_after: u64) -> ProgressSnapshot {
        let cells = self.cells.lock().expect("progress registry poisoned");
        let restarts = cells
            .iter()
            .enumerate()
            .map(|(restart, cell)| {
                let state = cell.state.load(Ordering::Relaxed);
                let heartbeat = cell.heartbeat_tick.load(Ordering::Relaxed);
                let improve = cell.improve_tick.load(Ordering::Relaxed);
                // Stalled = running, and *both* signals silent: a beat
                // that never improves is progress (the heartbeat shows
                // it), a restart between beats is fine until the
                // threshold passes.
                let stalled = state == STATE_RUNNING
                    && now.saturating_sub(heartbeat) > stall_after
                    && now.saturating_sub(improve) > stall_after;
                RestartProgress {
                    restart,
                    iters_done: cell.iters_done.load(Ordering::Relaxed),
                    iters_planned: cell.iters_planned.load(Ordering::Relaxed),
                    best_energy: f64::from_bits(cell.best_bits.load(Ordering::Relaxed)),
                    accepts: cell.accepts.load(Ordering::Relaxed),
                    heartbeat_tick: heartbeat,
                    improve_tick: improve,
                    state: match state {
                        STATE_RUNNING => "running",
                        STATE_DONE => "done",
                        _ => "idle",
                    },
                    stalled,
                }
            })
            .collect();
        ProgressSnapshot {
            tick: now,
            stall_after,
            restarts,
        }
    }
}

/// One thread's live span stack, maintained by `Span` open/close.
///
/// The mutex is only ever briefly held (a push, a pop, or the
/// sampler's clone); spans on uninstrumented runs never reach it.
pub struct ThreadStack {
    label: String,
    frames: Mutex<Vec<&'static str>>,
}

impl ThreadStack {
    /// Pushes a frame on span open.
    pub fn push(&self, name: &'static str) {
        self.frames.lock().expect("span stack poisoned").push(name);
    }

    /// Pops a frame on span close. Spans close LIFO in normal code,
    /// but handles can migrate across threads — pop the *last
    /// occurrence* of the name so a mismatch degrades to a slightly
    /// fuzzy profile instead of corrupting the stack.
    pub fn pop(&self, name: &'static str) {
        let mut frames = self.frames.lock().expect("span stack poisoned");
        if let Some(pos) = frames.iter().rposition(|f| *f == name) {
            frames.remove(pos);
        }
    }

    /// The stack rendered as a collapsed path (`label;outer;inner`),
    /// or `None` when no span is open.
    fn collapsed(&self) -> Option<String> {
        let frames = self.frames.lock().expect("span stack poisoned");
        if frames.is_empty() {
            return None;
        }
        let mut path = self.label.clone();
        for frame in frames.iter() {
            path.push(';');
            path.push_str(frame);
        }
        Some(path)
    }
}

/// The registry of live [`ThreadStack`]s the sampler walks.
#[derive(Default)]
pub struct StackRegistry {
    stacks: Mutex<Vec<Arc<ThreadStack>>>,
}

impl StackRegistry {
    /// Registers (or re-uses) the stack for `label`. Handles cloned
    /// with the same thread label share one stack, exactly like they
    /// share one event-stream label.
    fn register(&self, label: &str) -> Arc<ThreadStack> {
        let mut stacks = self.stacks.lock().expect("stack registry poisoned");
        if let Some(existing) = stacks.iter().find(|s| s.label == label) {
            return Arc::clone(existing);
        }
        let stack = Arc::new(ThreadStack {
            label: label.to_string(),
            frames: Mutex::new(Vec::new()),
        });
        stacks.push(Arc::clone(&stack));
        stack
    }
}

/// Collapsed-stack sample counts — the sampling profiler's output,
/// renderable as a flamegraph via `tsv3d-bench`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SampledProfile {
    /// Sampling rounds taken (idle rounds included).
    pub samples: u64,
    /// `label;outer;inner` → times that exact stack was observed.
    pub counts: BTreeMap<String, u64>,
}

impl SampledProfile {
    /// Renders the profile in collapsed-stack format (`path count`
    /// per line, path-sorted) — directly consumable by flamegraph
    /// tooling and `tsv3d-bench`'s SVG renderer.
    pub fn render_folded(&self) -> String {
        let mut out = String::new();
        for (path, count) in &self.counts {
            out.push_str(path);
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }
}

/// The live-run observability hub a [`TelemetryHandle`] can carry:
/// progress cells + span-stack registry + the shared tick source.
///
/// [`TelemetryHandle`]: crate::TelemetryHandle
pub struct Pulse {
    ticks: Arc<dyn TickSource>,
    progress: ProgressRegistry,
    stacks: StackRegistry,
    stall_after: u64,
    peak_stalled: AtomicU64,
}

impl std::fmt::Debug for Pulse {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pulse")
            .field("stall_after", &self.stall_after)
            .finish()
    }
}

impl Default for Pulse {
    fn default() -> Self {
        Self::new()
    }
}

impl Pulse {
    /// A pulse on the default wall clock (250 ms ticks, stall after
    /// [`DEFAULT_STALL_AFTER`] ticks).
    pub fn new() -> Self {
        Self::with_ticks(Arc::new(WallTicks::default()))
    }

    /// A pulse on an injected tick source — how tests drive the
    /// watchdog deterministically.
    pub fn with_ticks(ticks: Arc<dyn TickSource>) -> Self {
        Self {
            ticks,
            progress: ProgressRegistry::default(),
            stacks: StackRegistry::default(),
            stall_after: DEFAULT_STALL_AFTER,
            peak_stalled: AtomicU64::new(0),
        }
    }

    /// Overrides the watchdog threshold (ticks of combined heartbeat
    /// + improvement silence before a running restart is stalled).
    pub fn with_stall_after(mut self, ticks: u64) -> Self {
        self.stall_after = ticks.max(1);
        self
    }

    /// The configured watchdog threshold, in ticks.
    pub fn stall_after(&self) -> u64 {
        self.stall_after
    }

    /// The current tick.
    pub fn now(&self) -> u64 {
        self.ticks.now()
    }

    /// The writing end of `restart`'s progress cell. One registry
    /// lock here, at restart setup; every subsequent
    /// [`RestartCell::beat`] is lock-free.
    pub fn cell(&self, restart: usize) -> RestartCell {
        RestartCell {
            cell: self.progress.cell(restart),
            ticks: Arc::clone(&self.ticks),
        }
    }

    /// Registers (or fetches) the span stack for `label`.
    pub fn stack(&self, label: &str) -> Arc<ThreadStack> {
        self.stacks.register(label)
    }

    /// A consistent-enough snapshot of every restart's progress with
    /// watchdog verdicts at the current tick. Also advances the
    /// high-water stall mark returned by [`Pulse::peak_stalled`].
    pub fn progress_snapshot(&self) -> ProgressSnapshot {
        let snap = self.progress.snapshot(self.ticks.now(), self.stall_after);
        self.peak_stalled
            .fetch_max(snap.stalled_count() as u64, Ordering::Relaxed);
        snap
    }

    /// The most restarts ever observed stalled in a single
    /// [`Pulse::progress_snapshot`] over this pulse's lifetime — the
    /// run-level stall count the history ledger records. Zero until a
    /// snapshot has been taken.
    pub fn peak_stalled(&self) -> u64 {
        self.peak_stalled.load(Ordering::Relaxed)
    }

    /// One sampling round: every registered thread stack with an open
    /// span contributes its collapsed path to `profile`. Idle stacks
    /// contribute nothing; the round still counts, so sample counts
    /// divided by `profile.samples` estimate wall-clock fractions.
    pub fn sample_once(&self, profile: &mut SampledProfile) {
        profile.samples += 1;
        let stacks = self
            .stacks
            .stacks
            .lock()
            .expect("stack registry poisoned");
        for stack in stacks.iter() {
            if let Some(path) = stack.collapsed() {
                *profile.counts.entry(path).or_insert(0) += 1;
            }
        }
    }
}

/// A background sampling thread over a [`Pulse`]: snapshots every
/// registered span stack on a fixed period until stopped.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    profile: Arc<Mutex<SampledProfile>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Sampler {
    /// Starts sampling `pulse` every `period` on a background thread.
    pub fn start(pulse: Arc<Pulse>, period: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let profile = Arc::new(Mutex::new(SampledProfile::default()));
        let thread = {
            let stop = Arc::clone(&stop);
            let profile = Arc::clone(&profile);
            let period = period.max(Duration::from_millis(1));
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    {
                        let mut profile =
                            profile.lock().expect("sampler profile poisoned");
                        pulse.sample_once(&mut profile);
                    }
                    std::thread::sleep(period);
                }
            })
        };
        Self {
            stop,
            profile,
            thread: Some(thread),
        }
    }

    /// A copy of the profile accumulated so far.
    pub fn profile(&self) -> SampledProfile {
        self.profile
            .lock()
            .expect("sampler profile poisoned")
            .clone()
    }

    /// Stops the sampling thread and returns the final profile.
    pub fn stop(mut self) -> SampledProfile {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        self.profile
            .lock()
            .expect("sampler profile poisoned")
            .clone()
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual_pulse() -> (Arc<Pulse>, Arc<ManualTicks>) {
        let ticks = Arc::new(ManualTicks::new());
        let pulse = Arc::new(
            Pulse::with_ticks(Arc::clone(&ticks) as Arc<dyn TickSource>)
                .with_stall_after(4),
        );
        (pulse, ticks)
    }

    #[test]
    fn cells_report_progress_through_the_snapshot() {
        let (pulse, ticks) = manual_pulse();
        let cell = pulse.cell(0);
        cell.begin(1000);
        ticks.advance(1);
        cell.beat(250, 42.5, 17);

        let snap = pulse.progress_snapshot();
        assert_eq!(snap.restarts.len(), 1);
        let r = &snap.restarts[0];
        assert_eq!(r.restart, 0);
        assert_eq!(r.iters_done, 250);
        assert_eq!(r.iters_planned, 1000);
        assert_eq!(r.best_energy, 42.5);
        assert_eq!(r.accepts, 17);
        assert_eq!(r.state, "running");
        assert!(!r.stalled);
        assert!(!snap.all_done());

        cell.finish();
        let snap = pulse.progress_snapshot();
        assert_eq!(snap.restarts[0].state, "done");
        assert!(snap.all_done());
    }

    #[test]
    fn registering_a_later_restart_fills_the_gap_with_idle_cells() {
        let (pulse, _ticks) = manual_pulse();
        pulse.cell(2).begin(10);
        let snap = pulse.progress_snapshot();
        assert_eq!(snap.restarts.len(), 3);
        assert_eq!(snap.restarts[0].state, "idle");
        assert_eq!(snap.restarts[1].state, "idle");
        assert_eq!(snap.restarts[2].state, "running");
    }

    #[test]
    fn watchdog_flags_silent_running_restarts_only() {
        let (pulse, ticks) = manual_pulse();
        let silent = pulse.cell(0);
        let beating = pulse.cell(1);
        let done = pulse.cell(2);
        silent.begin(100);
        beating.begin(100);
        done.begin(100);
        done.finish();

        // Within the threshold: nobody is stalled.
        ticks.advance(4);
        beating.beat(10, 5.0, 1);
        assert_eq!(pulse.progress_snapshot().stalled_count(), 0);

        // Past the threshold: only the silent running restart stalls.
        ticks.advance(5);
        beating.beat(20, 5.0, 2); // heartbeat, no improvement
        let snap = pulse.progress_snapshot();
        assert!(snap.restarts[0].stalled, "{snap:?}");
        assert!(!snap.restarts[1].stalled, "heartbeat counts as life");
        assert!(!snap.restarts[2].stalled, "done restarts never stall");
        assert_eq!(snap.stalled_count(), 1);
    }

    #[test]
    fn peak_stalled_is_a_high_water_mark_across_snapshots() {
        let (pulse, ticks) = manual_pulse();
        let a = pulse.cell(0);
        let b = pulse.cell(1);
        a.begin(100);
        b.begin(100);
        assert_eq!(pulse.peak_stalled(), 0);

        // Both silent past the threshold: peak rises to 2.
        ticks.advance(10);
        assert_eq!(pulse.progress_snapshot().stalled_count(), 2);
        assert_eq!(pulse.peak_stalled(), 2);

        // Recovery does not lower the mark.
        a.beat(10, 1.0, 1);
        b.beat(10, 1.0, 1);
        assert_eq!(pulse.progress_snapshot().stalled_count(), 0);
        assert_eq!(pulse.peak_stalled(), 2);
    }

    #[test]
    fn improvement_resets_the_watchdog_even_between_heartbeats() {
        let (pulse, ticks) = manual_pulse();
        let cell = pulse.cell(0);
        cell.begin(100);
        ticks.advance(3);
        cell.beat(10, 9.0, 1); // improvement at tick 3
        ticks.advance(4);
        // Tick 7: heartbeat age 4 (= threshold, not past it) — alive.
        assert_eq!(pulse.progress_snapshot().stalled_count(), 0);
        ticks.advance(1);
        // Tick 8: both signals 5 ticks old — stalled.
        assert_eq!(pulse.progress_snapshot().stalled_count(), 1);
    }

    #[test]
    fn sampler_collapses_live_span_stacks() {
        let (pulse, _ticks) = manual_pulse();
        let main = pulse.stack("main");
        let worker = pulse.stack("r0");
        main.push("run");
        worker.push("anneal");
        worker.push("epoch");

        let mut profile = SampledProfile::default();
        pulse.sample_once(&mut profile);
        worker.pop("epoch");
        pulse.sample_once(&mut profile);

        assert_eq!(profile.samples, 2);
        assert_eq!(profile.counts["main;run"], 2);
        assert_eq!(profile.counts["r0;anneal;epoch"], 1);
        assert_eq!(profile.counts["r0;anneal"], 1);
        let folded = profile.render_folded();
        assert!(folded.contains("main;run 2\n"), "{folded}");
        assert!(folded.contains("r0;anneal;epoch 1\n"), "{folded}");
    }

    #[test]
    fn idle_stacks_contribute_nothing_but_rounds_still_count() {
        let (pulse, _ticks) = manual_pulse();
        let _stack = pulse.stack("main");
        let mut profile = SampledProfile::default();
        pulse.sample_once(&mut profile);
        assert_eq!(profile.samples, 1);
        assert!(profile.counts.is_empty());
        assert_eq!(profile.render_folded(), "");
    }

    #[test]
    fn same_label_shares_one_stack() {
        let (pulse, _ticks) = manual_pulse();
        let a = pulse.stack("r1");
        let b = pulse.stack("r1");
        a.push("outer");
        b.push("inner");
        let mut profile = SampledProfile::default();
        pulse.sample_once(&mut profile);
        assert_eq!(profile.counts["r1;outer;inner"], 1);
        b.pop("inner");
        a.pop("outer");
        let mut after = SampledProfile::default();
        pulse.sample_once(&mut after);
        assert!(after.counts.is_empty());
    }

    #[test]
    fn mismatched_pop_degrades_gracefully() {
        let (pulse, _ticks) = manual_pulse();
        let stack = pulse.stack("main");
        stack.push("a");
        stack.push("b");
        stack.pop("a"); // out of order: removes the last `a`, keeps `b`
        stack.pop("missing"); // no-op
        let mut profile = SampledProfile::default();
        pulse.sample_once(&mut profile);
        assert_eq!(profile.counts["main;b"], 1);
    }

    #[test]
    fn background_sampler_accumulates_and_stops() {
        let (pulse, _ticks) = manual_pulse();
        let stack = pulse.stack("main");
        stack.push("work");
        let sampler = Sampler::start(Arc::clone(&pulse), Duration::from_millis(1));
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let profile = sampler.profile();
            if profile.counts.get("main;work").copied().unwrap_or(0) >= 3 {
                break;
            }
            assert!(Instant::now() < deadline, "sampler never sampled");
            std::thread::sleep(Duration::from_millis(1));
        }
        let profile = sampler.stop();
        assert!(profile.samples >= 3);
        assert!(profile.counts["main;work"] >= 3);
        stack.pop("work");
    }

    #[test]
    fn wall_ticks_advance_monotonically() {
        let ticks = WallTicks::new(Duration::from_millis(1));
        let first = ticks.now();
        std::thread::sleep(Duration::from_millis(5));
        assert!(ticks.now() > first);
    }

    #[test]
    fn manual_pulse_beat_improvement_tracking_is_bitwise() {
        let (pulse, ticks) = manual_pulse();
        let cell = pulse.cell(0);
        cell.begin(10);
        ticks.advance(1);
        cell.beat(1, 7.0, 0);
        let first_improve = pulse.progress_snapshot().restarts[0].improve_tick;
        assert_eq!(first_improve, 1);
        ticks.advance(1);
        cell.beat(2, 7.0, 0); // same bits: no improvement
        assert_eq!(
            pulse.progress_snapshot().restarts[0].improve_tick,
            first_improve
        );
        ticks.advance(1);
        cell.beat(3, 6.5, 0);
        assert_eq!(pulse.progress_snapshot().restarts[0].improve_tick, 3);
    }
}
