//! Pluggable telemetry sinks: null, human-readable stderr, JSON lines.

use crate::Value;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// One emitted telemetry event.
#[derive(Debug, Clone, Copy)]
pub struct Event<'a> {
    /// Seconds since the owning handle was created.
    pub elapsed: f64,
    /// Event name, dot-separated (`"anneal.epoch"`).
    pub name: &'a str,
    /// Ordered key/value payload.
    pub fields: &'a [(&'static str, Value)],
    /// Worker label of a thread-labelled handle, if any. Carried out of
    /// band rather than as a `fields` entry so labelled emitters build
    /// no per-event field vector; sinks serialise it *after* the fields
    /// (as a trailing `thread` key), keeping the rendered stream
    /// identical to when it was an appended field.
    pub thread: Option<&'a str>,
}

/// Destination of telemetry events.
pub trait Sink: Send + Sync {
    /// Consumes one event.
    fn emit(&self, event: &Event<'_>);

    /// Flushes buffered output (a no-op for unbuffered sinks).
    fn flush(&self) {}
}

/// Shared sinks delegate: lets several [`TelemetryHandle`]s (e.g. one
/// per bench case) write to one `Arc<JsonLinesSink>` without a wrapper
/// type.
///
/// [`TelemetryHandle`]: crate::TelemetryHandle
impl<S: Sink + ?Sized> Sink for std::sync::Arc<S> {
    fn emit(&self, event: &Event<'_>) {
        (**self).emit(event);
    }

    fn flush(&self) {
        (**self).flush();
    }
}

/// Discards everything — the default, near-zero-overhead sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn emit(&self, _event: &Event<'_>) {}
}

/// Human-readable one-line-per-event output on stderr.
#[derive(Debug, Clone, Copy, Default)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn emit(&self, event: &Event<'_>) {
        let mut line = format!("[telemetry +{:.6}s] {}", event.elapsed, event.name);
        for (key, value) in event.fields {
            line.push(' ');
            line.push_str(key);
            line.push('=');
            match value {
                Value::U64(v) => line.push_str(&v.to_string()),
                Value::I64(v) => line.push_str(&v.to_string()),
                Value::F64(v) => line.push_str(&format!("{v:.6e}")),
                Value::Bool(v) => line.push_str(&v.to_string()),
                Value::Str(v) => line.push_str(v),
            }
        }
        if let Some(label) = event.thread {
            line.push_str(" thread=");
            line.push_str(label);
        }
        eprintln!("{line}");
    }
}

/// Machine-readable JSON-lines output (one object per event).
pub struct JsonLinesSink {
    out: Mutex<Box<dyn Write + Send>>,
    path: Option<PathBuf>,
}

impl std::fmt::Debug for JsonLinesSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonLinesSink")
            .field("path", &self.path)
            .finish_non_exhaustive()
    }
}

impl JsonLinesSink {
    /// Creates (truncating) a `.jsonl` file at `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(path)?;
        Ok(Self {
            out: Mutex::new(Box::new(BufWriter::new(file))),
            path: Some(path.to_path_buf()),
        })
    }

    /// Wraps an arbitrary writer (used by tests and in-memory capture).
    pub fn with_writer(writer: Box<dyn Write + Send>) -> Self {
        Self {
            out: Mutex::new(writer),
            path: None,
        }
    }

    /// The output path, when writing to a file.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }
}

impl Sink for JsonLinesSink {
    fn emit(&self, event: &Event<'_>) {
        let mut line = String::with_capacity(128);
        line.push_str("{\"t\":");
        push_json_f64(&mut line, event.elapsed);
        line.push_str(",\"event\":");
        push_json_str(&mut line, event.name);
        for (key, value) in event.fields {
            line.push(',');
            push_json_str(&mut line, key);
            line.push(':');
            match value {
                Value::U64(v) => line.push_str(&v.to_string()),
                Value::I64(v) => line.push_str(&v.to_string()),
                Value::F64(v) => push_json_f64(&mut line, *v),
                Value::Bool(v) => line.push_str(if *v { "true" } else { "false" }),
                Value::Str(v) => push_json_str(&mut line, v),
            }
        }
        if let Some(label) = event.thread {
            line.push_str(",\"thread\":");
            push_json_str(&mut line, label);
        }
        line.push_str("}\n");
        let mut out = self.out.lock().expect("telemetry writer poisoned");
        let _ = out.write_all(line.as_bytes());
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("telemetry writer poisoned").flush();
    }
}

impl Drop for JsonLinesSink {
    fn drop(&mut self) {
        Sink::flush(self);
    }
}

/// Appends `v` as a JSON number; non-finite values (which JSON cannot
/// represent) become `null`.
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{v}` prints shortest-round-trip for f64, always with enough
        // precision to reparse exactly; integral values print without
        // a fraction (`1`), which is still a valid JSON number.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Appends `s` as a JSON string literal with full escaping.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
