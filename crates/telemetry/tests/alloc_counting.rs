//! End-to-end tests of the counting allocator: this test binary
//! installs its own [`CountingAlloc`] (exactly as the experiments crate
//! does), so every phase runs against real, serviced allocations.
//!
//! Everything lives in ONE test function: enablement is process-global
//! state, and the default parallel test runner would race independent
//! `set_enabled` toggles against each other.

use std::io::Write;
use std::sync::{Arc, Mutex};
use tsv3d_telemetry::alloc::{self, CountingAlloc};
use tsv3d_telemetry::{JsonLinesSink, TelemetryHandle};

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc::system();

/// A `Write` handle into a shared buffer (same idiom as `sinks.rs`).
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn new() -> Self {
        Self(Arc::new(Mutex::new(Vec::new())))
    }

    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("valid UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Extracts the integer value of `"key":N` from a JSONL line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let at = line.find(&tag)? + tag.len();
    let digits: String = line[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

#[test]
fn counting_allocator_end_to_end() {
    // ---- Phase 1: disabled (the default) means zero counting. ----
    assert!(
        alloc::is_installed(),
        "the test harness itself allocates through GLOBAL before we run"
    );
    assert!(!alloc::is_enabled(), "counting must be opt-in");
    assert!(alloc::active_mark().is_none());
    let before = alloc::snapshot();
    drop(std::hint::black_box(vec![0u8; 64 * 1024]));
    let after = alloc::snapshot();
    assert_eq!(before.alloc_count, after.alloc_count, "disabled: no counts");
    assert_eq!(before.alloc_bytes, after.alloc_bytes, "disabled: no bytes");
    assert_eq!(before.live_bytes, after.live_bytes);

    // ---- Phase 2: enabled — counters, live bytes and peak move. ----
    assert!(!alloc::set_enabled(true), "previous state was disabled");
    assert!(alloc::is_active());
    let mark = alloc::active_mark().expect("enabled + installed");
    let block = std::hint::black_box(vec![7u8; 10_000]);
    let held = alloc::delta_since(&mark);
    assert!(held.alloc_count >= 1);
    assert!(
        held.alloc_bytes >= 10_000,
        "at least the vec itself: {}",
        held.alloc_bytes
    );
    let live_with_block = alloc::snapshot().live_bytes;
    drop(block);
    let snap = alloc::snapshot();
    assert!(
        snap.live_bytes + 10_000 <= live_with_block,
        "freeing returns live bytes"
    );
    assert!(
        snap.peak_bytes >= live_with_block,
        "peak is a watermark, it must not drop with the free"
    );

    // ---- Phase 3: single-threaded deltas are deterministic. ----
    let workload = || {
        let m = alloc::active_mark().expect("still active");
        let mut held: Vec<Vec<u8>> = Vec::new();
        for i in 0..32usize {
            held.push(std::hint::black_box(vec![i as u8; 100 + i]));
        }
        drop(held);
        alloc::delta_since(&m)
    };
    let first = workload();
    let second = workload();
    assert_eq!(first.alloc_bytes, second.alloc_bytes, "same work, same bytes");
    assert_eq!(first.alloc_count, second.alloc_count, "same work, same count");
    assert!(first.alloc_bytes >= (0..32).map(|i| 100 + i).sum::<usize>() as u64);

    // ---- Phase 4: reset_peak rebases the watermark to live. ----
    alloc::reset_peak();
    let rebased = alloc::snapshot();
    assert_eq!(
        rebased.peak_bytes, rebased.live_bytes,
        "no allocation happened between reset and snapshot"
    );

    // ---- Phase 5: spans stamp alloc deltas; outer >= inner. ----
    let buf = SharedBuf::new();
    let tel = TelemetryHandle::with_sink(Box::new(JsonLinesSink::with_writer(
        Box::new(buf.clone()),
    )));
    {
        let _outer = tel.span("outer");
        let _pad = std::hint::black_box(vec![0u8; 5_000]);
        {
            let _inner = tel.span("inner");
            let _v = std::hint::black_box(vec![0u8; 20_000]);
        }
    }
    tel.flush();
    let out = buf.contents();
    let inner_line = out
        .lines()
        .find(|l| l.contains("\"name\":\"inner\""))
        .expect("inner span emitted");
    let outer_line = out
        .lines()
        .find(|l| l.contains("\"name\":\"outer\""))
        .expect("outer span emitted");
    for line in [inner_line, outer_line] {
        for key in ["alloc_bytes", "alloc_count", "peak_delta"] {
            assert!(
                field_u64(line, key).is_some(),
                "span close must carry {key}: {line}"
            );
        }
    }
    let inner_bytes = field_u64(inner_line, "alloc_bytes").unwrap();
    let outer_bytes = field_u64(outer_line, "alloc_bytes").unwrap();
    assert!(inner_bytes >= 20_000, "inner saw its own vec: {inner_bytes}");
    assert!(
        outer_bytes >= inner_bytes + 5_000,
        "outer contains inner plus its own pad: outer {outer_bytes} inner {inner_bytes}"
    );

    // ---- Phase 6: spans opened while disabled emit no mem fields. ----
    assert!(alloc::set_enabled(false), "previous state was enabled");
    let buf2 = SharedBuf::new();
    let tel2 = TelemetryHandle::with_sink(Box::new(JsonLinesSink::with_writer(
        Box::new(buf2.clone()),
    )));
    drop(tel2.span("quiet"));
    tel2.flush();
    let out2 = buf2.contents();
    assert!(out2.contains("\"name\":\"quiet\""));
    assert!(
        !out2.contains("alloc_bytes"),
        "disabled spans must not stamp zeros: {out2}"
    );
}
