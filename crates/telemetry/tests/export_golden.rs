//! Golden-file pin of the Prometheus text exposition format.
//!
//! The `/metrics` body is an interface other tooling parses (CI's
//! serve-smoke job, any real Prometheus scraper), so its exact shape —
//! series order, `_total` suffixes, cumulative log2 bucket edges, the
//! zero bucket, sum/count formatting — is pinned byte-for-byte against
//! `tests/data/metrics_golden.txt`. A deliberate format change must
//! update the golden file in the same commit.

use tsv3d_telemetry::alloc::AllocStats;
use tsv3d_telemetry::export::{render_prometheus, MetricsSnapshot};
use tsv3d_telemetry::pulse::{ProgressSnapshot, RestartProgress};
use tsv3d_telemetry::Histogram;

/// Builds the fixed snapshot the golden file describes. All values are
/// exactly representable in binary floating point, so rendering is
/// platform-independent.
fn golden_snapshot() -> MetricsSnapshot {
    let mut anneal = Histogram::new();
    // 0 → zero bucket; 0.03 ≈ bucket -6 (edge 0.03125) twice via two
    // exact values; 0.05 → bucket -5 (edge 0.0625); 1.0 and 1.5 →
    // bucket 0 (edge 2).
    for v in [0.0, 0.021484375, 0.025390625, 0.033203125, 0.994140625, 1.5] {
        anneal.record(v);
    }
    let mut gap = Histogram::new();
    for v in [2.5, 3.5, 7.5] {
        gap.record(v);
    }
    MetricsSnapshot {
        counters: vec![
            ("anneal.accepted".to_string(), 311),
            ("anneal.proposals".to_string(), 8000),
            ("bnb.nodes".to_string(), 1729),
        ],
        // The power-attribution gauges `tsv3d explain` / `tsv3d assign`
        // publish; dyadic values so the shortest-roundtrip rendering is
        // platform-independent.
        gauges: vec![
            ("power.coupling_charge".to_string(), 0.000244140625),
            ("power.self_charge".to_string(), 0.001953125),
            ("power.total".to_string(), 0.002197265625),
        ],
        histograms: vec![
            ("core.anneal".to_string(), anneal),
            ("gap.db".to_string(), gap),
        ],
        alloc: Some(AllocStats {
            alloc_count: 2048,
            dealloc_count: 2000,
            realloc_count: 16,
            alloc_bytes: 1 << 20,
            live_bytes: 1 << 16,
            peak_bytes: 1 << 19,
        }),
        uptime_seconds: 12.5,
        // A fixed revision: the golden file pins the label formatting,
        // not whatever HEAD the test machine happens to have.
        git_rev: "deadbee".to_string(),
        // Two restarts pin the tsv3d-pulse progress block: one mid-run
        // with a dyadic best power, one stalled and still at +Inf.
        progress: Some(ProgressSnapshot {
            tick: 48,
            stall_after: 40,
            restarts: vec![
                RestartProgress {
                    restart: 0,
                    iters_done: 2500,
                    iters_planned: 10000,
                    best_energy: 0.25,
                    accepts: 311,
                    heartbeat_tick: 47,
                    improve_tick: 44,
                    state: "running",
                    stalled: false,
                },
                RestartProgress {
                    restart: 1,
                    iters_done: 0,
                    iters_planned: 10000,
                    best_energy: f64::INFINITY,
                    accepts: 0,
                    heartbeat_tick: 2,
                    improve_tick: 2,
                    state: "running",
                    stalled: true,
                },
            ],
        }),
    }
}

#[test]
fn prometheus_rendering_matches_the_golden_file() {
    let rendered = render_prometheus(&golden_snapshot());
    let golden = include_str!("data/metrics_golden.txt");
    assert_eq!(
        rendered, golden,
        "exposition format drifted from tests/data/metrics_golden.txt; \
         if the change is intentional, regenerate the golden file"
    );
}

#[test]
fn rendering_is_stable_across_repeated_calls() {
    let snap = golden_snapshot();
    let first = render_prometheus(&snap);
    for _ in 0..3 {
        assert_eq!(render_prometheus(&snap), first);
    }
}
