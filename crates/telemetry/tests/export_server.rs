//! Socket-level tests of the `export::MetricsServer` HTTP listener:
//! endpoint routing, the HEAD and Content-Length contract, the
//! malformed-input contract (400/404/405), and concurrent scrapes
//! against a live registry.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use tsv3d_telemetry::export::{DashHtml, MetricsServer, RunsJson};
use tsv3d_telemetry::{NullSink, TelemetryHandle};

fn start(tel: &TelemetryHandle, runs: Option<RunsJson>) -> MetricsServer {
    MetricsServer::start("127.0.0.1:0", tel, runs).expect("bind an ephemeral port")
}

fn start_with_dash(tel: &TelemetryHandle, dash: DashHtml) -> MetricsServer {
    MetricsServer::start_with("127.0.0.1:0", tel, None, Some(dash))
        .expect("bind an ephemeral port")
}

/// Sends raw bytes and returns the full response text.
fn raw_request(server: &MetricsServer, request: &[u8]) -> String {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(request).expect("send request");
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    response
}

fn get(server: &MetricsServer, path: &str) -> String {
    raw_request(
        server,
        format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").as_bytes(),
    )
}

fn head(server: &MetricsServer, path: &str) -> String {
    raw_request(
        server,
        format!("HEAD {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").as_bytes(),
    )
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .unwrap_or("")
}

fn content_length_of(response: &str) -> usize {
    response
        .lines()
        .find_map(|line| line.strip_prefix("Content-Length: "))
        .unwrap_or_else(|| panic!("Content-Length header missing:\n{response}"))
        .trim()
        .parse()
        .expect("numeric Content-Length")
}

fn status_line_of(response: &str) -> &str {
    response.lines().next().unwrap_or("")
}

#[test]
fn healthz_answers_ok() {
    let tel = TelemetryHandle::with_sink(Box::new(NullSink));
    let server = start(&tel, None);
    let response = get(&server, "/healthz");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert_eq!(body_of(&response), "ok\n");
    server.shutdown();
}

#[test]
fn metrics_reflects_live_registry_state() {
    let tel = TelemetryHandle::with_sink(Box::new(NullSink));
    tel.add("anneal.proposals", 41);
    let server = start(&tel, None);
    let first = get(&server, "/metrics");
    assert!(first.contains("text/plain; version=0.0.4"), "{first}");
    assert!(first.contains("tsv3d_anneal_proposals_total 41"), "{first}");
    // A later scrape observes counter growth — the server reads the
    // shared registry, not a startup copy.
    tel.add("anneal.proposals", 1);
    let second = get(&server, "/metrics");
    assert!(
        second.contains("tsv3d_anneal_proposals_total 42"),
        "{second}"
    );
    assert!(server.requests_served() >= 2);
    server.shutdown();
}

#[test]
fn serve_request_counters_advance_and_scrape_themselves() {
    let tel = TelemetryHandle::with_sink(Box::new(NullSink));
    let server = start(&tel, None);
    // The /metrics endpoint counts itself *before* capturing, so even
    // the first scrape reports its own request.
    let first = get(&server, "/metrics");
    assert!(
        first.contains("tsv3d_serve_requests_metrics_total 1"),
        "{first}"
    );
    // Per-endpoint counters advance with traffic on other endpoints…
    let _ = get(&server, "/healthz");
    let _ = get(&server, "/healthz");
    let _ = get(&server, "/runs");
    // …and bad requests (404 here) land in the 4xx counter.
    let _ = get(&server, "/nope");
    let second = get(&server, "/metrics");
    assert!(
        second.contains("tsv3d_serve_requests_metrics_total 2"),
        "{second}"
    );
    assert!(
        second.contains("tsv3d_serve_requests_healthz_total 2"),
        "{second}"
    );
    assert!(
        second.contains("tsv3d_serve_requests_runs_total 1"),
        "{second}"
    );
    assert!(
        second.contains("tsv3d_serve_requests_bad_total 1"),
        "{second}"
    );
    assert_eq!(tel.counter_value("serve.requests.healthz"), Some(2));
    server.shutdown();
}

#[test]
fn metrics_query_string_is_ignored() {
    let tel = TelemetryHandle::with_sink(Box::new(NullSink));
    let server = start(&tel, None);
    let response = get(&server, "/metrics?debug=1");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    server.shutdown();
}

#[test]
fn unknown_path_is_404() {
    let tel = TelemetryHandle::with_sink(Box::new(NullSink));
    let server = start(&tel, None);
    let response = get(&server, "/nope");
    assert!(response.starts_with("HTTP/1.1 404 Not Found"), "{response}");
    server.shutdown();
}

#[test]
fn non_get_method_is_405() {
    let tel = TelemetryHandle::with_sink(Box::new(NullSink));
    let server = start(&tel, None);
    let response = raw_request(
        &server,
        b"POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n",
    );
    assert!(
        response.starts_with("HTTP/1.1 405 Method Not Allowed"),
        "{response}"
    );
    server.shutdown();
}

#[test]
fn malformed_request_lines_get_400() {
    let tel = TelemetryHandle::with_sink(Box::new(NullSink));
    let server = start(&tel, None);
    for junk in [
        &b"GARBAGE\r\n\r\n"[..],
        &b"GET /metrics\r\n\r\n"[..],          // missing HTTP version
        &b"GET /metrics FTP/1.0\r\n\r\n"[..],  // not an HTTP version
        &b"GET / HTTP/1.1 extra\r\n\r\n"[..],  // 4 tokens
        &b"\r\n\r\n"[..],                      // empty request line
    ] {
        let response = raw_request(&server, junk);
        assert!(
            response.starts_with("HTTP/1.1 400 Bad Request"),
            "request {:?} got:\n{response}",
            String::from_utf8_lossy(junk)
        );
    }
    // The server must still answer well-formed requests afterwards.
    let response = get(&server, "/healthz");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    server.shutdown();
}

#[test]
fn runs_endpoint_uses_the_injected_callback() {
    let tel = TelemetryHandle::with_sink(Box::new(NullSink));
    let runs: RunsJson = Arc::new(|| "[{\"case\":\"demo\"}]\n".to_string());
    let server = start(&tel, Some(runs));
    let response = get(&server, "/runs");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("application/json"), "{response}");
    assert_eq!(body_of(&response), "[{\"case\":\"demo\"}]\n");
    server.shutdown();
}

#[test]
fn runs_endpoint_defaults_to_empty_array() {
    let tel = TelemetryHandle::with_sink(Box::new(NullSink));
    let server = start(&tel, None);
    let response = get(&server, "/runs");
    assert_eq!(body_of(&response), "[]\n");
    server.shutdown();
}

#[test]
fn every_response_carries_an_accurate_content_length() {
    let tel = TelemetryHandle::with_sink(Box::new(NullSink));
    let server = start(&tel, None);
    for path in ["/metrics", "/healthz", "/runs", "/progress", "/nope"] {
        let response = get(&server, path);
        assert_eq!(
            content_length_of(&response),
            body_of(&response).len(),
            "GET {path}:\n{response}"
        );
    }
    server.shutdown();
}

#[test]
fn head_mirrors_get_headers_with_an_empty_body() {
    let tel = TelemetryHandle::with_sink(Box::new(NullSink));
    let runs: RunsJson = Arc::new(|| "[{\"case\":\"demo\"}]\n".to_string());
    let server = start(&tel, Some(runs));
    // Stable-body endpoints: HEAD advertises exactly the length GET
    // would send, and sends nothing.
    for path in ["/healthz", "/runs", "/nope"] {
        let got = get(&server, path);
        let probed = head(&server, path);
        assert_eq!(
            status_line_of(&probed),
            status_line_of(&got),
            "HEAD {path} status"
        );
        assert_eq!(body_of(&probed), "", "HEAD {path} must send no body");
        assert_eq!(
            content_length_of(&probed),
            body_of(&got).len(),
            "HEAD {path} Content-Length:\n{probed}"
        );
    }
    // /metrics self-counts before capturing and /progress embeds the
    // live uptime, so their body lengths can drift between requests;
    // the shape contract still holds.
    for path in ["/metrics", "/progress"] {
        let probed = head(&server, path);
        assert!(probed.starts_with("HTTP/1.1 200 OK"), "{probed}");
        assert_eq!(body_of(&probed), "", "HEAD {path} must send no body");
        assert!(content_length_of(&probed) > 0, "{probed}");
    }
    server.shutdown();
}

#[test]
fn dash_endpoint_uses_the_injected_renderer() {
    let tel = TelemetryHandle::with_sink(Box::new(NullSink));
    let dash: DashHtml = Arc::new(|| "<!DOCTYPE html>\n<html>dash</html>\n".to_string());
    let server = start_with_dash(&tel, dash);
    let response = get(&server, "/dash");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("text/html; charset=utf-8"), "{response}");
    assert_eq!(body_of(&response), "<!DOCTYPE html>\n<html>dash</html>\n");
    // HEAD probes the same renderer.
    let probed = head(&server, "/dash");
    assert!(probed.starts_with("HTTP/1.1 200 OK"), "{probed}");
    assert_eq!(body_of(&probed), "");
    assert_eq!(
        content_length_of(&probed),
        "<!DOCTYPE html>\n<html>dash</html>\n".len()
    );
    assert_eq!(tel.counter_value("serve.requests.dash"), Some(2));
    server.shutdown();
}

#[test]
fn dash_without_a_renderer_is_404() {
    let tel = TelemetryHandle::with_sink(Box::new(NullSink));
    let server = start(&tel, None);
    let response = get(&server, "/dash");
    assert!(response.starts_with("HTTP/1.1 404 Not Found"), "{response}");
    assert!(response.contains("no dashboard renderer attached"), "{response}");
    server.shutdown();
}

#[test]
fn concurrent_scrapes_during_active_recording_all_succeed() {
    let tel = TelemetryHandle::with_sink(Box::new(NullSink));
    let server = start(&tel, None);
    let addr = server.local_addr();

    // A writer hammers the registry while scrapers poll /metrics —
    // the shape of a live scrape against an annealing run.
    let writer_tel = tel.clone();
    let writer = std::thread::spawn(move || {
        for i in 0..2000u64 {
            writer_tel.add("load.ops", 1);
            writer_tel.record("load.vals", (i % 17) as f64 + 0.5);
        }
    });
    let scrapers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut ok = 0u32;
                for _ in 0..10 {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream.write_all(b"GET /metrics HTTP/1.1\r\n\r\n").unwrap();
                    let mut response = String::new();
                    let _ = stream.read_to_string(&mut response);
                    assert!(
                        response.starts_with("HTTP/1.1 200 OK"),
                        "scrape failed:\n{response}"
                    );
                    // Every snapshot is internally consistent: the
                    // +Inf bucket equals the histogram count.
                    if let Some(count_line) = response
                        .lines()
                        .find(|l| l.starts_with("tsv3d_load_vals_count "))
                    {
                        let count: u64 =
                            count_line.split_whitespace().nth(1).unwrap().parse().unwrap();
                        let inf_line = response
                            .lines()
                            .find(|l| l.starts_with("tsv3d_load_vals_bucket{le=\"+Inf\"}"))
                            .expect("+Inf bucket present with count");
                        let inf: u64 =
                            inf_line.split_whitespace().nth(1).unwrap().parse().unwrap();
                        assert_eq!(inf, count, "cumulative buckets must end at count");
                    }
                    ok += 1;
                }
                ok
            })
        })
        .collect();
    writer.join().unwrap();
    for scraper in scrapers {
        assert_eq!(scraper.join().unwrap(), 10);
    }
    assert_eq!(tel.counter_value("load.ops"), Some(2000));
    server.shutdown();
}

#[test]
fn shutdown_joins_and_stops_serving() {
    let tel = TelemetryHandle::with_sink(Box::new(NullSink));
    let server = start(&tel, None);
    let addr = server.local_addr();
    assert!(get(&server, "/healthz").starts_with("HTTP/1.1 200 OK"));
    server.shutdown();
    // After shutdown the port no longer accepts (or resets instantly).
    let alive = TcpStream::connect_timeout(&addr, Duration::from_millis(200))
        .map(|mut s| {
            let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
            let mut buf = String::new();
            s.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
            let _ = s.read_to_string(&mut buf);
            !buf.is_empty()
        })
        .unwrap_or(false);
    assert!(!alive, "server must stop answering after shutdown");
}
