//! Integration tests: JSON-lines serialisation, escaping, and the
//! stderr/null sink contracts.

use std::io::Write;
use std::sync::{Arc, Mutex};
use tsv3d_telemetry::{Event, JsonLinesSink, Sink, TelemetryHandle, Value};

/// A `Write` handle into a shared buffer, so tests can inspect what a
/// sink wrote after handing it ownership.
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn new() -> Self {
        Self(Arc::new(Mutex::new(Vec::new())))
    }

    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("sink wrote valid UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn emit(fields: &[(&'static str, Value)]) -> String {
    emit_with_thread(fields, None)
}

fn emit_with_thread(fields: &[(&'static str, Value)], thread: Option<&str>) -> String {
    let buf = SharedBuf::new();
    let sink = JsonLinesSink::with_writer(Box::new(buf.clone()));
    sink.emit(&Event {
        elapsed: 0.25,
        name: "test.event",
        fields,
        thread,
    });
    sink.flush();
    buf.contents()
}

/// Minimal recursive JSON validator: checks the line is one
/// syntactically valid object and returns the top-level keys in order.
fn parse_json_object(line: &str) -> Vec<(String, String)> {
    let line = line.trim();
    assert!(line.starts_with('{') && line.ends_with('}'), "not an object: {line}");
    let mut pairs = Vec::new();
    let mut chars = line[1..line.len() - 1].chars().peekable();
    loop {
        match chars.peek() {
            None => break,
            Some(',') => {
                chars.next();
            }
            _ => {}
        }
        // Key.
        assert_eq!(chars.next(), Some('"'), "key must be a string");
        let mut key = String::new();
        loop {
            match chars.next().expect("unterminated key") {
                '"' => break,
                '\\' => {
                    key.push('\\');
                    key.push(chars.next().expect("dangling escape"));
                }
                c => key.push(c),
            }
        }
        assert_eq!(chars.next(), Some(':'), "missing colon after key {key}");
        // Value: string, or a bare token up to `,`/end.
        let mut value = String::new();
        if chars.peek() == Some(&'"') {
            chars.next();
            value.push('"');
            loop {
                match chars.next().expect("unterminated string value") {
                    '"' => break,
                    '\\' => {
                        value.push('\\');
                        value.push(chars.next().expect("dangling escape"));
                    }
                    c => {
                        assert!(
                            (c as u32) >= 0x20,
                            "raw control character {:#x} inside JSON string",
                            c as u32
                        );
                        value.push(c);
                    }
                }
            }
            value.push('"');
        } else {
            while let Some(&c) = chars.peek() {
                if c == ',' {
                    break;
                }
                value.push(c);
                chars.next();
            }
            let token = value.trim();
            assert!(
                token == "null"
                    || token == "true"
                    || token == "false"
                    || token.parse::<f64>().is_ok(),
                "invalid bare JSON token: {token}"
            );
        }
        pairs.push((key, value));
    }
    pairs
}

#[test]
fn events_serialise_to_one_json_object_per_line() {
    let out = emit(&[
        ("count", Value::U64(42)),
        ("delta", Value::I64(-7)),
        ("power", Value::F64(1.5e-13)),
        ("done", Value::Bool(true)),
        ("label", Value::Str("fig3".into())),
    ]);
    assert_eq!(out.lines().count(), 1);
    let pairs = parse_json_object(&out);
    let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(keys, ["t", "event", "count", "delta", "power", "done", "label"]);
    assert_eq!(pairs[2].1, "42");
    assert_eq!(pairs[3].1, "-7");
    assert_eq!(pairs[4].1.parse::<f64>().unwrap(), 1.5e-13);
    assert_eq!(pairs[5].1, "true");
    assert_eq!(pairs[6].1, "\"fig3\"");
}

#[test]
fn strings_are_escaped() {
    let out = emit(&[(
        "msg",
        Value::Str("say \"hi\"\\ path\nnext\ttab \u{01} end".into()),
    )]);
    let pairs = parse_json_object(&out);
    let escaped = &pairs[2].1;
    assert!(escaped.contains("\\\"hi\\\""), "quote escaping: {escaped}");
    assert!(escaped.contains("\\\\ path"), "backslash escaping: {escaped}");
    assert!(escaped.contains("\\n"), "newline escaping: {escaped}");
    assert!(escaped.contains("\\t"), "tab escaping: {escaped}");
    assert!(escaped.contains("\\u0001"), "control escaping: {escaped}");
    assert!(!out.trim_end_matches('\n').contains('\n'), "stays one line");
}

#[test]
fn non_finite_floats_become_null() {
    let out = emit(&[
        ("nan", Value::F64(f64::NAN)),
        ("inf", Value::F64(f64::INFINITY)),
        ("ninf", Value::F64(f64::NEG_INFINITY)),
        ("fine", Value::F64(0.5)),
    ]);
    let pairs = parse_json_object(&out);
    assert_eq!(pairs[2].1, "null");
    assert_eq!(pairs[3].1, "null");
    assert_eq!(pairs[4].1, "null");
    assert_eq!(pairs[5].1, "0.5");
}

#[test]
fn thread_label_serialises_as_the_trailing_key() {
    // The label moved from an appended field to `Event::thread`; the
    // serialised stream must be byte-identical to when it was a field,
    // i.e. a `thread` key *after* every payload field.
    let out = emit_with_thread(&[("restart", Value::U64(1))], Some("r1"));
    let pairs = parse_json_object(&out);
    let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(keys, ["t", "event", "restart", "thread"]);
    assert_eq!(pairs[3].1, "\"r1\"");
}

#[test]
fn handle_with_json_sink_streams_events_and_spans() {
    let buf = SharedBuf::new();
    let tel =
        TelemetryHandle::with_sink(Box::new(JsonLinesSink::with_writer(Box::new(buf.clone()))));
    tel.event("run.start", &[("bin", Value::Str("test".into()))]);
    {
        let _span = tel.span("stage");
    }
    tel.flush();
    let out = buf.contents();
    assert_eq!(out.lines().count(), 2);
    for line in out.lines() {
        parse_json_object(line); // every line is valid JSON
    }
    assert!(out.contains("\"event\":\"run.start\""));
    assert!(out.contains("\"event\":\"span\""));
    assert!(out.contains("\"name\":\"stage\""));
}

#[test]
fn json_file_sink_writes_jsonl_file() {
    let dir = std::env::temp_dir().join(format!("tsv3d_tel_{}", std::process::id()));
    let path = dir.join("nested/run_telemetry.jsonl");
    {
        let sink = JsonLinesSink::create(&path).expect("creates parent dirs");
        assert_eq!(sink.path(), Some(path.as_path()));
        sink.emit(&Event {
            elapsed: 1.0,
            name: "done",
            fields: &[],
            thread: None,
        });
    } // drop flushes
    let contents = std::fs::read_to_string(&path).unwrap();
    assert_eq!(contents.lines().count(), 1);
    parse_json_object(contents.lines().next().unwrap());
    std::fs::remove_dir_all(&dir).ok();
}
