//! Bring-your-own-extraction walkthrough: run the assignment flow on a
//! capacitance model imported from CSV (e.g. exported from Ansys Q3D or
//! a measurement campaign) instead of the built-in analytical extractor,
//! then hand the link back to an external simulator as SPICE.
//!
//! Run with: `cargo run --release -p tsv3d-experiments --example custom_matrix`

use tsv3d_core::{optimize, AssignmentProblem};
use tsv3d_model::{io, Extractor, LinearCapModel, TsvArray, TsvGeometry, TsvRcNetlist};
use tsv3d_stats::gen::GaussianSource;
use tsv3d_stats::SwitchingStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // In a real flow these two CSVs come from your field solver: one
    // extraction with every bit probability at 0 and one at 1 (the
    // regression endpoints of the paper's Eqs. 6–7). Here we produce
    // them with the built-in extractor so the example is self-contained.
    let array = TsvArray::new(3, 3, TsvGeometry::itrs_2018_min())?;
    let extractor = Extractor::new(array.clone());
    let csv_p0 = io::matrix_to_csv(&extractor.extract(&[0.0; 9])?);
    let csv_p1 = io::matrix_to_csv(&extractor.extract(&[1.0; 9])?);

    // --- the import path a Q3D user follows ---
    let c0 = io::matrix_from_csv(&csv_p0)?;
    let c1 = io::matrix_from_csv(&csv_p1)?;
    // Eqs. 6–7: ΔC = (C(1) − C(0)) / 2, C_R = C(0) + ΔC.
    let delta_c = (&c1 - &c0).scale(0.5);
    let c_r = &c0 + &delta_c;
    let cap = LinearCapModel::from_parts(c_r, delta_c.clone());
    println!("imported a {}x{} capacitance model from CSV", cap.n(), cap.n());

    // Solve the assignment for a DSP stream.
    let stream = GaussianSource::new(9, 40.0).with_correlation(0.5).generate(5, 20_000)?;
    let problem = AssignmentProblem::new(SwitchingStats::from_stream(&stream), cap)?;
    let best = optimize::branch_and_bound(&problem, &Default::default())?;
    println!(
        "optimal assignment found ({}; {} search nodes)",
        if best.proven_optimal { "proven optimal" } else { "anytime result" },
        best.nodes
    );
    println!(
        "power: {:.4e} vs identity {:.4e}  ({:.1} % saved)",
        best.result.power,
        problem.identity_power(),
        (1.0 - best.result.power / problem.identity_power()) * 100.0
    );

    // Hand the physical link back to an external simulator.
    let cap_matrix = extractor.extract(SwitchingStats::from_stream(&stream).bit_probabilities())?;
    let spice = io::to_spice(
        &TsvRcNetlist::from_extraction(&array, cap_matrix),
        "tsv_bundle_3x3",
        3,
    );
    let line_count = spice.lines().count();
    println!("\nSPICE subcircuit generated ({line_count} lines); header:");
    for line in spice.lines().take(3) {
        println!("  {line}");
    }
    Ok(())
}
