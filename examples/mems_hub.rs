//! MEMS sensor-hub walkthrough (paper Sec. 5.2): pick the right
//! systematic assignment per stream type without any sample data, and
//! check the choice against the optimal assignment.
//!
//! Run with: `cargo run --release -p tsv3d-experiments --example mems_hub`

use tsv3d_core::{optimize, systematic, AssignmentProblem};
use tsv3d_model::{Extractor, LinearCapModel, TsvArray, TsvGeometry};
use tsv3d_stats::gen::{MemsSensor, SensorKind};
use tsv3d_stats::SwitchingStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let array = TsvArray::new(4, 4, TsvGeometry::wide_2018())?;
    let cap = LinearCapModel::fit(&Extractor::new(array))?;

    println!("16-bit MEMS links over a 4x4 array (r = 2 um, d = 8 um)\n");
    println!(
        "{:<30} {:>10} {:>10} {:>10}  recommended",
        "stream", "optimal", "Sawtooth", "Spiral"
    );

    for (kind, name) in [
        (SensorKind::Magnetometer, "magnetometer"),
        (SensorKind::Accelerometer, "accelerometer"),
        (SensorKind::Gyroscope, "gyroscope"),
    ] {
        let sensor = MemsSensor::new(kind);
        for (mode, stream) in [
            ("XYZ interleaved", sensor.xyz_stream(3)?),
            ("RMS magnitude", sensor.rms_stream(3)?),
        ] {
            let problem =
                AssignmentProblem::new(SwitchingStats::from_stream(&stream), cap.clone())?;
            let random = optimize::random_mean(&problem, 300, 5)?;
            let red = |p: f64| (1.0 - p / random) * 100.0;
            let best = optimize::anneal(&problem, &optimize::AnnealOptions::default())?;
            let sawtooth = problem.power(&systematic::sawtooth(&problem));
            let spiral = problem.power(&systematic::spiral(&problem));

            // Sec. 4's rule of thumb: mean-free normally distributed
            // (interleaved axes) -> Sawtooth; temporally correlated,
            // unsigned (RMS) -> Spiral.
            let recommended = if mode.starts_with("XYZ") { "Sawtooth" } else { "Spiral" };
            println!(
                "{:<30} {:>9.1}% {:>9.1}% {:>9.1}%  {}",
                format!("{name} {mode}"),
                red(best.power),
                red(sawtooth),
                red(spiral),
                recommended
            );
        }
    }
    println!("\n(percentages: power reduction vs. the mean random assignment)");
    Ok(())
}
