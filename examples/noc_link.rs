//! 3-D network-on-chip walkthrough (paper Secs. 6–7): a 2-D link code
//! (coupling-invert) crosses a TSV link, and the bit-to-TSV assignment
//! recovers the efficiency the metal-wire code lacks in 3-D — verified
//! at circuit level.
//!
//! Run with: `cargo run --release -p tsv3d-experiments --example noc_link`

use tsv3d_circuit::{DriverModel, TsvLink};
use tsv3d_codec::CouplingInvert;
use tsv3d_core::{optimize, AssignmentProblem};
use tsv3d_experiments::common::assign_stream;
use tsv3d_model::{Extractor, LinearCapModel, TsvArray, TsvGeometry, TsvRcNetlist};
use tsv3d_stats::gen::{IdlePolicy, NocTraffic};
use tsv3d_stats::{BitStream, SwitchingStats};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A router forwards bursty 7-bit flit traffic (60 % load, idle
    // cycles hold the last flit); the 2-D links use coupling-invert
    // coding, and re-coding just for the short 3-D hop would be too
    // expensive — so the coded flits cross the TSVs as-is.
    let flits = NocTraffic::new(7, 0.6)?.generate(99, 8_000)?;
    let coded = CouplingInvert::new(7)?.encode(&flits)?;
    // Plus a rarely asserted control flag (9 lines on a 3×3 bundle).
    let words: Vec<u64> = coded
        .iter()
        .enumerate()
        .map(|(t, w)| w | u64::from(t % 10_000 == 9_999) << 8)
        .collect();
    let stream = BitStream::from_words(9, words)?;

    let array = TsvArray::new(3, 3, TsvGeometry::itrs_2018_min())?;

    // Optimal assignment from the stream statistics.
    let cap = LinearCapModel::fit(&Extractor::new(array.clone()))?;
    let problem = AssignmentProblem::new(SwitchingStats::from_stream(&stream), cap)?;
    let best = optimize::anneal(&problem, &optimize::AnnealOptions::default())?;
    let assigned = assign_stream(&stream, &best.assignment);

    // Circuit-level check, MOS effect included: extract the capacitances
    // at each variant's line probabilities, then integrate the supply
    // energy at 3 GHz.
    let simulate = |s: &BitStream| -> Result<f64, Box<dyn std::error::Error>> {
        let stats = SwitchingStats::from_stream(s);
        let cap = Extractor::new(array.clone()).extract(stats.bit_probabilities())?;
        let link = TsvLink::new(
            TsvRcNetlist::from_extraction(&array, cap),
            DriverModel::ptm_22nm_strength6(),
        )?;
        Ok(link.simulate(s, 3.0e9)?.mean_power())
    };

    let p_plain = simulate(&stream)?;
    let p_assigned = simulate(&assigned)?;

    println!("coupling-invert coded 7-bit flits over a 3x3 TSV bundle, 3 GHz:");
    println!("  natural line order:     {:.3} uW", p_plain * 1e6);
    println!("  optimal assignment:     {:.3} uW", p_assigned * 1e6);
    println!(
        "  reduction:              {:.1} %   (paper reports 11.2 % for this setup)",
        (1.0 - p_assigned / p_plain) * 100.0
    );
    println!();
    println!("inversions chosen by the optimiser (realised as inverting TSV drivers):");
    let inverted: Vec<usize> = (0..9).filter(|&b| best.assignment.is_inverted(b)).collect();
    println!("  bits {:?}", inverted);

    // Bonus: the idle-pattern choice is itself a power knob. Idling at
    // all-ones keeps the vias depleted (low capacitance, MOS effect).
    println!();
    println!("idle-pattern study (same traffic, uncoded, identity assignment):");
    for (label, policy) in [
        ("hold last flit", IdlePolicy::HoldLast),
        ("idle at all-0 ", IdlePolicy::Zero),
        ("idle at all-1 ", IdlePolicy::One),
    ] {
        let raw = NocTraffic::new(9, 0.6)?
            .with_idle_policy(policy)
            .generate(99, 8_000)?;
        println!("  {label}: {:.3} uW", simulate(&raw)? * 1e6);
    }
    Ok(())
}
