//! Quickstart: find the power-optimal bit-to-TSV assignment for a data
//! stream and compare it against the systematic and random alternatives.
//!
//! Run with: `cargo run --release -p tsv3d-experiments --example quickstart`

use tsv3d_core::{optimize, systematic, AssignmentProblem};
use tsv3d_model::{Extractor, LinearCapModel, TsvArray, TsvGeometry};
use tsv3d_stats::gen::SequentialSource;
use tsv3d_stats::SwitchingStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the TSV array: a 3×3 bundle of minimum-2018 vias
    //    (r = 1 µm, pitch 4 µm, 50 µm substrate).
    let array = TsvArray::new(3, 3, TsvGeometry::itrs_2018_min())?;

    // 2. Extract its capacitance model (the workspace's analytical
    //    substitute for a field solver) and fit the paper's linear
    //    C(probability) regression (Eqs. 6–9).
    let cap = LinearCapModel::fit(&Extractor::new(array))?;

    // 3. Characterise the data crossing the bundle: here a 9-bit
    //    address-like stream with 1 % branch probability.
    let stream = SequentialSource::new(9, 0.01)?.generate(42, 20_000)?;
    let stats = SwitchingStats::from_stream(&stream);

    // 4. Pose and solve the assignment problem (Eq. 10).
    let problem = AssignmentProblem::new(stats, cap)?;
    let best = optimize::anneal(&problem, &optimize::AnnealOptions::default())?;
    let spiral = systematic::spiral(&problem);
    let random = optimize::random_mean(&problem, 300, 7)?;

    println!("normalised power <T', C'> (lower is better):");
    println!("  random assignment (mean): {:.4e}", random);
    println!("  Spiral (systematic):      {:.4e}", problem.power(&spiral));
    println!("  optimal (annealed):       {:.4e}", best.power);
    println!();
    println!(
        "optimal assignment saves {:.1} % vs. the random baseline",
        (1.0 - best.power / random) * 100.0
    );
    println!();
    println!("bit -> TSV mapping of the optimal assignment:");
    for bit in 0..9 {
        println!(
            "  bit {bit} -> via {}{}",
            best.assignment.line_of_bit(bit),
            if best.assignment.is_inverted(bit) {
                "  (inverted)"
            } else {
                ""
            }
        );
    }
    Ok(())
}
