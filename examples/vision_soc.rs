//! Vision-SoC walkthrough (paper Sec. 5.1): size the TSV link between an
//! image-sensing die and a processing die, including stable service
//! lines, and quantify what each assignment strategy buys.
//!
//! Run with: `cargo run --release -p tsv3d-experiments --example vision_soc`

use tsv3d_core::{optimize, systematic, AssignmentProblem};
use tsv3d_model::{Extractor, LinearCapModel, TsvArray, TsvGeometry};
use tsv3d_stats::gen::ImageSensor;
use tsv3d_stats::SwitchingStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sensor = ImageSensor::new(96, 64);

    // The sensing die streams whole Bayer cells: R | G1 | G2 | B, 32 bit
    // per cycle, plus four service lines sharing the same 6×6 bundle:
    // enable (0), redundant (0), V_dd (1) and GND (0).
    let stream = sensor
        .rgb_parallel_stream(2026)?
        .with_stable_lines(&[false, false, true, false])?;
    println!(
        "link: 6x6 TSV array, 32 data bits + 4 service lines, {} cycles",
        stream.len()
    );

    let array = TsvArray::new(6, 6, TsvGeometry::itrs_2018_min())?;
    let cap = LinearCapModel::fit(&Extractor::new(array))?;

    // Supply lines must never be inverted; everything else may be.
    let mut invertible = vec![true; 36];
    invertible[34] = false; // V_dd
    invertible[35] = false; // GND
    let problem =
        AssignmentProblem::new(SwitchingStats::from_stream(&stream), cap)?.with_invertible(invertible)?;

    let random = optimize::random_mean(&problem, 400, 11)?;
    let spiral = problem.power(&systematic::spiral(&problem));
    let best = optimize::anneal(&problem, &optimize::AnnealOptions::default())?;

    println!();
    println!("normalised TSV power:");
    println!("  random assignment (mean):  {:.4e}", random);
    println!(
        "  Spiral (no sample needed): {:.4e}  (-{:.1} %)",
        spiral,
        (1.0 - spiral / random) * 100.0
    );
    println!(
        "  optimal (Eq. 10):          {:.4e}  (-{:.1} %)",
        best.power,
        (1.0 - best.power / random) * 100.0
    );

    // Where did the stable lines go?
    println!();
    println!("service-line placement under the optimal assignment:");
    for (bit, name) in [(32usize, "enable"), (33, "redundant"), (34, "V_dd"), (35, "GND")] {
        let line = best.assignment.line_of_bit(bit);
        println!(
            "  {name:<9} -> via ({}, {}){}",
            line / 6,
            line % 6,
            if best.assignment.is_inverted(bit) {
                "  [driven inverted]"
            } else {
                ""
            }
        );
    }
    println!();
    println!("note: the enable/redundant lines rest at 0 and may be inverted to 1,");
    println!("shrinking their vias' capacitances through the MOS effect; the supply");
    println!("lines are placed but never inverted.");
    Ok(())
}
