//! Wide-bus walkthrough: a 32-bit word crosses the die boundary through
//! two 4×4 TSV arrays. Which bits *share* a bundle matters: packing
//! correlated bits together lets the per-bundle assignment (paper
//! Eq. 10) exploit their coupling.
//!
//! Run with: `cargo run --release -p tsv3d-experiments --example wide_bus`

use tsv3d_core::bundles::{assign_bus, Partition};
use tsv3d_core::optimize::AnnealOptions;
use tsv3d_model::{Extractor, LinearCapModel, TsvArray, TsvGeometry};
use tsv3d_stats::gen::GaussianSource;
use tsv3d_stats::SwitchingStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 32-bit mean-free DSP word with moderate temporal correlation.
    let stream = GaussianSource::new(32, 2.0e8)
        .with_correlation(0.4)
        .generate(7, 20_000)?;
    let stats = SwitchingStats::from_stream(&stream);

    // Two identical 4×4 arrays carry 16 bits each.
    let cap = LinearCapModel::fit(&Extractor::new(TsvArray::new(
        4,
        4,
        TsvGeometry::itrs_2018_min(),
    )?))?;
    let opts = AnnealOptions::default();

    // Three bundle layouts: bit-striped (a lane-striped router's
    // output), contiguous halves, and correlation clustering.
    let striped = Partition::striped(32, 2)?;
    let contiguous = Partition::contiguous(32, &[16, 16])?;
    let clustered = Partition::correlation_clustered(&stats, &[16, 16])?;

    let plan_striped = assign_bus(&stats, &striped, &cap, &opts)?;
    let plan_contig = assign_bus(&stats, &contiguous, &cap, &opts)?;
    let plan_clust = assign_bus(&stats, &clustered, &cap, &opts)?;

    println!("32-bit bus over two 4x4 arrays (r = 1 um, d = 4 um)\n");
    let show = |label: &str, plan: &tsv3d_core::bundles::BusAssignment| {
        println!(
            "{label:<28} {:.4e} + {:.4e} = {:.4e}",
            plan.bundle_powers[0], plan.bundle_powers[1], plan.total_power
        );
    };
    show("bit-striped (even/odd):", &plan_striped);
    show("contiguous halves:", &plan_contig);
    show("correlation-clustered:", &plan_clust);
    println!(
        "\nclustering saves {:.1} % vs the striped layout ({:.1} % vs contiguous —",
        (1.0 - plan_clust.total_power / plan_striped.total_power) * 100.0,
        (1.0 - plan_clust.total_power / plan_contig.total_power) * 100.0
    );
    println!("here the MSBs are already contiguous, so those two nearly coincide);");
    println!("striping splits the correlated sign bits across arrays and wastes them.");
    println!("\nbundle 0 of the clustered plan carries bits:");
    println!("  {:?}", clustered.group(0));
    println!("(the sign-extension MSBs travel together, so their mutual coupling");
    println!("can be matched to the array's strongest capacitances)");
    Ok(())
}
