//! Offline drop-in subset of the `criterion` crate (see
//! `shims/README.md`).
//!
//! Provides just enough of the criterion 0.5 API for the workspace's
//! `harness = false` bench targets to build and run offline:
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up once and then timed
//! over `sample_size` batches; the mean and best batch times are
//! printed to stderr. Under `cargo test` (when the harness passes
//! `--test`) each benchmark body runs exactly once as a smoke test.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    /// `true` when invoked by `cargo test` (smoke-test mode).
    test_mode: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            test_mode,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(id, self.test_mode, sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark of the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let samples = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        run_benchmark(&label, self.criterion.test_mode, samples, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_benchmark<F>(label: &str, test_mode: bool, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if test_mode {
        // Smoke-test: a single un-timed execution, like criterion's
        // `cargo test` behaviour.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        eprintln!("bench {label}: ok (test mode)");
        return;
    }
    // Warm-up round, then timed batches.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..sample_size {
        b.elapsed = Duration::ZERO;
        f(&mut b);
        let per_iter = b.elapsed / b.iters.max(1) as u32;
        total += per_iter;
        best = best.min(per_iter);
    }
    let mean = total / sample_size.max(1) as u32;
    eprintln!(
        "bench {label}: mean {:.3} ms, best {:.3} ms ({sample_size} samples)",
        mean.as_secs_f64() * 1e3,
        best.as_secs_f64() * 1e3,
    );
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: usize,
    elapsed: Duration,
}

impl Bencher {
    /// Times `sample` (called `iters` times per batch).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut sample: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(sample());
        }
        self.elapsed += start.elapsed();
    }
}

/// Bundles benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_each_benchmark() {
        let mut c = Criterion {
            test_mode: true,
            default_sample_size: 3,
        };
        let mut runs = 0;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(2);
            group.bench_function("one", |b| b.iter(|| runs += 1));
            group.finish();
        }
        assert_eq!(runs, 1, "test mode runs the body exactly once");
    }

    #[test]
    fn timed_mode_runs_warmup_plus_samples() {
        let mut c = Criterion {
            test_mode: false,
            default_sample_size: 4,
        };
        let mut runs = 0;
        c.bench_function("counted", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 5, "1 warm-up + 4 samples");
    }
}
