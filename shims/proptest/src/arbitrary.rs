//! `any::<T>()` — the canonical full-domain strategy per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen()
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.rng().gen::<u64>() >> 56) as u8
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.rng().gen::<u64>() >> 48) as u16
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen::<u64>() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen::<u64>() as i64
    }
}

impl Arbitrary for f64 {
    /// Finite values only (uniform sign/magnitude mix, no NaN/inf),
    /// which is what numeric property tests actually want.
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mantissa: f64 = rng.rng().gen();
        let exp: i32 = rng.rng().gen_range(0u32..64) as i32 - 32;
        let sign = if rng.rng().gen::<bool>() { -1.0 } else { 1.0 };
        sign * mantissa * (exp as f64).exp2()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
