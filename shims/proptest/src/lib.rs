//! Offline drop-in subset of the `proptest` crate (see `shims/README.md`).
//!
//! Implements the slice of the proptest API this workspace's
//! property-based tests use: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`), [`strategy::Strategy`] with
//! `prop_map`, range and tuple strategies, [`arbitrary::any`],
//! [`strategy::Just`], `prop::collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed derived from the test name (reproducible runs,
//! no persistence files) and there is **no shrinking** — a failing
//! case panics with its case number so it can be replayed.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror so `prop::collection::vec(...)` works after
/// `use proptest::prelude::*`, as with upstream proptest.
pub mod prop {
    pub use crate::arbitrary;
    pub use crate::collection;
    pub use crate::strategy;
}

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property-based tests: `proptest! { #[test] fn f(x in s) {..} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] — one plain `#[test]` fn per item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::new_value(&$strat, &mut __rng),)+
                );
                #[allow(unused_mut)]
                let mut __run = || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                if let Err(__msg) = __run() {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        __msg
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Fails the current proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Fails the current proptest case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    }};
}

/// Fails the current proptest case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn tuples_ranges_and_vec(
            x in 0usize..10,
            f in -2.0f64..=2.0,
            v in prop::collection::vec(any::<bool>(), 1..5),
            (a, b) in (0u64..100, Just(7u32)),
        ) {
            prop_assert!(x < 10);
            prop_assert!((-2.0..=2.0).contains(&f));
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(a < 100);
            prop_assert_eq!(b, 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn prop_map_composes(n in (1usize..4).prop_map(|k| k * 2)) {
            prop_assert!(n % 2 == 0 && (2..8).contains(&n));
        }
    }

    // No `#[test]` on the inner fn: test items nested inside a test
    // body are unnameable by the harness, so it is driven manually.
    proptest! {
        fn failing_inner(x in 0usize..5) {
            prop_assert!(x < 3, "x was {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_reports_case() {
        failing_inner();
    }
}
