//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just
/// a deterministic function from RNG state to a value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// Strategy producing always the same (cloned) value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(usize, u64, u32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident/$idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A/0);
impl_tuple_strategy!(A/0, B/1);
impl_tuple_strategy!(A/0, B/1, C/2);
impl_tuple_strategy!(A/0, B/1, C/2, D/3);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7);
