//! Test configuration and the deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of a `proptest!` block, mirroring
/// `proptest::test_runner::Config`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this offline shim uses a smaller
        // default because several properties in this workspace run
        // annealing or transient simulation per case.
        Self { cases: 96 }
    }
}

/// Deterministic RNG handed to strategies: seeded from the test name,
/// so every run of a given test explores the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Seeds from an FNV-1a hash of `name`.
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            rng: StdRng::seed_from_u64(hash),
        }
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}
