//! Offline drop-in subset of the `rand` crate (see `shims/README.md`).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand 0.8` API it actually
//! uses: [`rngs::StdRng`], the [`Rng`] extension trait with `gen`,
//! `gen_range` and `gen_bool`, and [`SeedableRng::seed_from_u64`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a
//! different bit stream than upstream `rand`'s StdRng (ChaCha12), but
//! every consumer in this workspace only relies on *determinism per
//! seed* and on statistical quality, never on a specific stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from an `RngCore` — the shim's
/// equivalent of `rand::distributions::Standard` sampling.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform integer in `[0, bound)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the draw exactly uniform; for the tiny
    // bounds used in this workspace the loop almost never iterates.
    let zone = bound.wrapping_neg() % bound;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let wide = (v as u128) * (bound as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= zone {
            return hi;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_ranges!(usize, u64, u32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        start + f64::sample(rng) * (end - start)
    }
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of an inferred type (`u64`, `u32`, `f64`, `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step — the standard seeding scrambler for xoshiro.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point of xoshiro.
                s = [0x9E37_79B9, 0x7F4A_7C15, 0xBF58_476D, 0x1CE4_E5B9];
            }
            Self { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
            let v = rng.gen_range(2..=4usize);
            assert!((2..=4).contains(&v));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(3..3usize);
    }
}
