//! Integration tests tying the abstract power model ⟨T, C⟩ to the
//! transient circuit simulator — the validation loop of the paper's
//! Sec. 7.

use tsv3d_circuit::{DriverModel, TsvLink};
use tsv3d_core::optimize;
use tsv3d_experiments::common;
use tsv3d_experiments::fig6;
use tsv3d_model::{Extractor, TsvArray, TsvGeometry, TsvRcNetlist};
use tsv3d_stats::gen::SequentialSource;
use tsv3d_stats::{BitStream, SwitchingStats};

/// Simulates a stream on a 3×3 link and returns the dynamic energy.
fn dynamic_energy(stream: &BitStream) -> f64 {
    let array = TsvArray::new(3, 3, TsvGeometry::itrs_2018_min()).expect("valid array");
    let stats = SwitchingStats::from_stream(stream);
    let cap = Extractor::new(array.clone())
        .extract(stats.bit_probabilities())
        .expect("valid probabilities");
    let link = TsvLink::new(
        TsvRcNetlist::from_extraction(&array, cap),
        DriverModel::ptm_22nm_strength6(),
    )
    .expect("valid driver");
    link.simulate(stream, 3.0e9).expect("widths match").dynamic_energy()
}

#[test]
fn model_power_ranking_matches_circuit_ranking() {
    // Take one stream, three assignments (optimal, identity, worst);
    // the circuit simulator must rank them the same way as ⟨T', C'⟩.
    let stream = SequentialSource::new(9, 0.02).unwrap().generate(7, 3_000).unwrap();
    let problem = common::problem(
        &stream,
        common::cap_model(3, 3, TsvGeometry::itrs_2018_min()),
    );
    let best = optimize::anneal(&problem, &common::anneal_options_quick()).unwrap();
    let worst = optimize::worst_case(&problem, &common::anneal_options_quick()).unwrap();

    let e_best = dynamic_energy(&common::assign_stream(&stream, &best.assignment));
    let e_identity = dynamic_energy(&stream);
    let e_worst = dynamic_energy(&common::assign_stream(&stream, &worst.assignment));

    assert!(
        e_best < e_identity && e_identity <= e_worst * 1.001,
        "circuit ranking broken: best {e_best:.3e}, identity {e_identity:.3e}, worst {e_worst:.3e}"
    );
}

#[test]
fn model_predicts_circuit_energy_ratio() {
    // The normalised model power ratio between two assignments should
    // approximate the simulated dynamic-energy ratio (the model ignores
    // driver parasitics, so agreement within ~15 % is expected).
    let stream = SequentialSource::new(9, 0.05).unwrap().generate(3, 3_000).unwrap();
    let problem = common::problem(
        &stream,
        common::cap_model(3, 3, TsvGeometry::itrs_2018_min()),
    );
    let best = optimize::anneal(&problem, &common::anneal_options_quick()).unwrap();

    let model_ratio = best.power / problem.identity_power();
    let circuit_ratio =
        dynamic_energy(&common::assign_stream(&stream, &best.assignment)) / dynamic_energy(&stream);
    assert!(
        (model_ratio - circuit_ratio).abs() < 0.15,
        "model ratio {model_ratio:.3} vs circuit ratio {circuit_ratio:.3}"
    );
}

#[test]
fn fig6_gray_combination_more_than_doubles_plain_gray() {
    // Sec. 7's Gray-coding story, at reduced scale: Gray alone helps the
    // multiplexed sensor stream less than Gray + optimal assignment.
    let samples = 300;
    let mux = fig6::point(fig6::Fig6Stream::SensorMux, samples, true);
    let gray = fig6::point(fig6::Fig6Stream::SensorMuxGray, samples, true);
    let gray_alone = 1.0 - gray.power_plain_mw / mux.power_plain_mw;
    let gray_plus_opt = 1.0 - gray.power_assigned_mw / mux.power_plain_mw;
    assert!(
        gray_plus_opt > gray_alone,
        "gray+opt {gray_plus_opt:.3} must beat gray alone {gray_alone:.3}"
    );
}

#[test]
fn fig6_correlator_combination_beats_correlator_alone() {
    let samples = 300;
    let rgb = fig6::point(fig6::Fig6Stream::RgbMuxRedundant, samples, true);
    let corr = fig6::point(fig6::Fig6Stream::RgbMuxCorrelator, samples, true);
    let corr_alone = 1.0 - corr.power_plain_mw / rgb.power_plain_mw;
    let corr_plus_opt = 1.0 - corr.power_assigned_mw / rgb.power_plain_mw;
    assert!(corr_alone > 0.0, "correlator itself must help: {corr_alone:.3}");
    assert!(
        corr_plus_opt > corr_alone,
        "corr+opt {corr_plus_opt:.3} must beat correlator alone {corr_alone:.3}"
    );
}

#[test]
fn leakage_scales_with_time_not_activity() {
    let quiet = BitStream::from_words(9, vec![0; 200]).unwrap();
    let busy = BitStream::from_words(9, (0..200).map(|t| if t % 2 == 0 { 0 } else { 0x1FF }).collect()).unwrap();
    let array = TsvArray::new(3, 3, TsvGeometry::itrs_2018_min()).unwrap();
    let cap = Extractor::new(array.clone()).extract(&[0.5; 9]).unwrap();
    let mk = || {
        TsvLink::new(
            TsvRcNetlist::from_extraction(&array, cap.clone()),
            DriverModel::ptm_22nm_strength6(),
        )
        .unwrap()
    };
    let r_quiet = mk().simulate(&quiet, 3.0e9).unwrap();
    let r_busy = mk().simulate(&busy, 3.0e9).unwrap();
    assert!((r_quiet.leakage_energy() - r_busy.leakage_energy()).abs() < 1e-20);
    assert!(r_busy.dynamic_energy() > 10.0 * r_quiet.dynamic_energy().max(1e-18));
}
