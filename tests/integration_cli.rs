//! End-to-end tests of the `tsv3d` multiplexer binary: subcommand
//! dispatch, usage/exit-code contract, and the `bench`/`trace`
//! surfaces added by the tsv3d-bench subsystem.
//!
//! Exit-code contract: 0 success, 1 runtime failure or gated
//! regression, 2 usage error (unknown command/option, missing value).

use std::path::PathBuf;
use std::process::{Command, Output};

fn tsv3d(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tsv3d"))
        .args(args)
        .env_remove("TSV3D_TELEMETRY")
        .output()
        .expect("tsv3d binary runs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// A per-test scratch directory under the target tmpdir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tsv3d_cli_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir is creatable");
    dir
}

#[test]
fn unknown_subcommand_prints_usage_and_exits_2() {
    let out = tsv3d(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("unknown command `frobnicate`"), "{err}");
    assert!(err.contains("Usage: tsv3d <command>"), "{err}");
    for cmd in ["bench", "trace", "converge", "explain", "history", "serve"] {
        assert!(err.contains(cmd), "usage must list `{cmd}`: {err}");
    }
}

#[test]
fn unknown_option_prints_usage_and_exits_2() {
    let out = tsv3d(&["assign", "--frob", "1"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("Usage: tsv3d <command>"));
}

#[test]
fn help_prints_usage_on_stdout_and_exits_0() {
    for arg in ["help", "--help", "-h"] {
        let out = tsv3d(&[arg]);
        assert_eq!(out.status.code(), Some(0), "`{arg}`");
        let text = stdout(&out);
        assert!(text.contains("Usage: tsv3d <command>"), "`{arg}`");
        for cmd in ["bench", "trace", "converge", "explain", "history", "serve"] {
            assert!(text.contains(cmd), "`{arg}` must list `{cmd}`: {text}");
        }
    }
}

#[test]
fn subcommand_help_prints_dedicated_usage() {
    for (cmd, marker) in [
        ("converge", "Usage: tsv3d converge"),
        ("explain", "Usage: tsv3d explain"),
        ("history", "Usage: tsv3d history"),
        ("serve", "Usage: tsv3d serve"),
    ] {
        let out = tsv3d(&[cmd, "--help"]);
        assert_eq!(out.status.code(), Some(0), "`{cmd} --help`");
        assert!(stdout(&out).contains(marker), "{}", stdout(&out));
    }
}

#[test]
fn bench_list_names_the_registry() {
    let out = tsv3d(&["bench", "--list"]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    for case in ["anneal_quick_3x3", "mna_lu_factor_n40", "gray_encode_w16_4k"] {
        assert!(text.contains(case), "missing `{case}` in:\n{text}");
    }
    assert!(
        text.lines().filter(|l| !l.trim().is_empty()).count() >= 10,
        "registry lists >= 10 cases:\n{text}"
    );
}

#[test]
fn bench_usage_error_exits_2() {
    let out = tsv3d(&["bench", "--gate", "5"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--gate requires --baseline"));
}

#[test]
fn bench_writes_valid_artifacts_and_gates_against_baselines() {
    use tsv3d_bench::json::{self, JsonValue};

    let dir = scratch("bench");
    let out_dir = dir.join("artifacts");
    let out = tsv3d(&[
        "bench",
        "--case",
        "gray_encode",
        "--iters",
        "3",
        "--warmup",
        "1",
        "--out-dir",
        out_dir.to_str().unwrap(),
        "--write-baseline",
        dir.join("base.json").to_str().unwrap(),
        "--history",
        dir.join("history.jsonl").to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));

    // The run appended a cross-run ledger record alongside artifacts.
    let ledger = std::fs::read_to_string(dir.join("history.jsonl")).expect("ledger written");
    assert!(ledger.contains("\"schema\":\"tsv3d-history/v1\""), "{ledger}");
    assert!(ledger.contains("\"case\":\"gray_encode_w16_4k\""), "{ledger}");

    // Artifact exists and matches the documented schema.
    let artifact = out_dir.join("BENCH_gray_encode_w16_4k.json");
    let text = std::fs::read_to_string(&artifact).expect("artifact written");
    let value = json::parse(&text).expect("artifact is valid JSON");
    assert_eq!(
        value.get("schema").and_then(JsonValue::as_str),
        Some("tsv3d-bench/v2")
    );
    assert_eq!(
        value.get("case").and_then(JsonValue::as_str),
        Some("gray_encode_w16_4k")
    );
    assert_eq!(value.get("iters").and_then(JsonValue::as_u64), Some(3));
    let wall = value.get("wall_ns").expect("wall_ns object");
    for stat in ["median", "p95", "min", "max"] {
        assert!(
            wall.get(stat).and_then(JsonValue::as_f64).unwrap_or(-1.0) > 0.0,
            "{stat} must be a positive number"
        );
    }
    assert!(value.get("git_rev").and_then(JsonValue::as_str).is_some());
    assert!(value.get("unix_time_s").and_then(JsonValue::as_u64).is_some());

    // A synthetic regressed baseline (impossibly fast) must fail the
    // gate; a generous one must pass.
    let fast = r#"{"cases":[{"case":"gray_encode_w16_4k","median_ns":1}]}"#;
    std::fs::write(dir.join("fast.json"), fast).unwrap();
    let out = tsv3d(&[
        "bench",
        "--case",
        "gray_encode",
        "--iters",
        "2",
        "--warmup",
        "0",
        "--out-dir",
        out_dir.to_str().unwrap(),
        "--baseline",
        dir.join("fast.json").to_str().unwrap(),
        "--gate",
        "10",
        "--no-history",
    ]);
    assert_eq!(out.status.code(), Some(1), "regression must exit nonzero");
    assert!(stdout(&out).contains("REGRESSED"), "{}", stdout(&out));

    let slow = r#"{"cases":[{"case":"gray_encode_w16_4k","median_ns":900000000000}]}"#;
    std::fs::write(dir.join("slow.json"), slow).unwrap();
    let out = tsv3d(&[
        "bench",
        "--case",
        "gray_encode",
        "--iters",
        "2",
        "--warmup",
        "0",
        "--out-dir",
        out_dir.to_str().unwrap(),
        "--baseline",
        dir.join("slow.json").to_str().unwrap(),
        "--gate",
        "10",
        "--no-history",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));

    // The combined baseline written above is itself a valid gate input.
    let base = std::fs::read_to_string(dir.join("base.json")).unwrap();
    assert!(base.contains("tsv3d-bench-baseline/v2"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_rolls_up_a_real_telemetry_file() {
    let dir = scratch("trace");
    let trace_path = dir.join("run_telemetry.jsonl");
    // Generate a real trace through the telemetry layer itself by
    // running an instrumented assignment.
    let out = Command::new(env!("CARGO_BIN_EXE_tsv3d"))
        .args(["assign", "--rows", "2", "--cols", "2", "--cycles", "500"])
        .env("TSV3D_TELEMETRY", "json")
        .env("TSV3D_TELEMETRY_PATH", trace_path.to_str().unwrap())
        .output()
        .expect("tsv3d binary runs");
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));

    let collapsed = dir.join("collapsed.txt");
    let out = tsv3d(&[
        "trace",
        trace_path.to_str().unwrap(),
        "--collapsed",
        collapsed.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("core.anneal"), "span rollup present:\n{text}");
    assert!(text.contains("0 skipped"), "{text}");
    let flame = std::fs::read_to_string(&collapsed).unwrap();
    assert!(
        flame.lines().any(|l| l.contains("cli.solve;core.anneal")),
        "nested stack reconstructed:\n{flame}"
    );

    // The SVG flamegraph renders the same spans and is deterministic:
    // rendering the same trace twice is byte-identical.
    let svg_a = dir.join("flame_a.svg");
    let svg_b = dir.join("flame_b.svg");
    for svg in [&svg_a, &svg_b] {
        let out = tsv3d(&[
            "trace",
            trace_path.to_str().unwrap(),
            "--svg",
            svg.to_str().unwrap(),
        ]);
        assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    }
    let rendered = std::fs::read(&svg_a).unwrap();
    assert_eq!(
        rendered,
        std::fs::read(&svg_b).unwrap(),
        "same trace must render a byte-identical SVG"
    );
    let text = String::from_utf8(rendered).unwrap();
    assert!(text.starts_with("<?xml"), "self-contained SVG document");
    assert!(text.contains("core.anneal"), "span frames labelled:\n{text}");
    assert!(text.ends_with("</svg>\n"), "document is complete");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_survives_a_malformed_file() {
    let dir = scratch("trace_bad");
    let path = dir.join("bad.jsonl");
    std::fs::write(
        &path,
        "{\"t\":1.0,\"event\":\"ok\"}\nnot json at all\n{\"t\":2.0,\"event\":\"span\",\"name\":\"x\",\"seconds\":0.5}\n{\"t\":3.0,\"event\":\"span\",\"name\":\"tr",
    )
    .unwrap();
    let out = tsv3d(&["trace", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("2 skipped"), "{text}");
    assert!(text.contains('x'), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_missing_file_exits_1() {
    let out = tsv3d(&["trace", "/nonexistent/никогда.jsonl"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("cannot read"));
}
