//! Integration tests of the coding layer with the statistics and the
//! assignment optimiser — the paper's Sec. 6 claims.

use tsv3d_codec::{apply_mask, invert_mask, Correlator, GrayCodec};
use tsv3d_core::optimize;
use tsv3d_experiments::common;
use tsv3d_model::TsvGeometry;
use tsv3d_stats::gen::{GaussianSource, ImageSensor, MemsSensor, SensorKind};
use tsv3d_stats::SwitchingStats;

#[test]
fn gray_coding_makes_msbs_of_gaussian_data_nearly_stable_zero() {
    // Sec. 6: "Gray coding results in bits nearly stable on logical 0
    // for this kind of data" (spatially correlated MSBs).
    let data = GaussianSource::new(16, 400.0)
        .with_correlation(0.6)
        .generate(11, 20_000)
        .unwrap();
    let coded = GrayCodec::new(16).unwrap().encode(&data).unwrap();
    let stats = SwitchingStats::from_stream(&coded);
    assert!(stats.bit_probability(14) < 0.1, "{}", stats.bit_probability(14));
    assert!(stats.self_switching(14) < 0.2);
}

#[test]
fn negated_gray_restores_one_probabilities_for_the_mos_effect() {
    let data = GaussianSource::new(16, 400.0)
        .with_correlation(0.6)
        .generate(11, 20_000)
        .unwrap();
    let plain = GrayCodec::new(16).unwrap().encode(&data).unwrap();
    let negated = GrayCodec::new(16).unwrap().negated().encode(&data).unwrap();
    let sp = SwitchingStats::from_stream(&plain);
    let sn = SwitchingStats::from_stream(&negated);
    // Same switching, complementary probabilities.
    for i in 0..16 {
        assert!((sp.self_switching(i) - sn.self_switching(i)).abs() < 1e-12);
        assert!((sp.bit_probability(i) + sn.bit_probability(i) - 1.0).abs() < 1e-12);
    }
    // And the negated variant round-trips.
    assert_eq!(
        GrayCodec::new(16).unwrap().negated().decode(&negated).unwrap(),
        data
    );
}

#[test]
fn optimiser_inversions_can_be_folded_into_a_mask() {
    // Sec. 6: inversions are realised by inverting buffers or hidden in
    // the coder. Folding them into a per-line XOR mask must reproduce
    // exactly the optimiser's predicted power.
    let stream = MemsSensor::new(SensorKind::Magnetometer)
        .with_samples(2_000)
        .xyz_stream(5)
        .unwrap();
    let problem = common::problem(
        &stream,
        common::cap_model(4, 4, TsvGeometry::wide_2018()),
    );
    let best = optimize::anneal(&problem, &common::anneal_options_quick()).unwrap();

    // Physical route A: generic signed rewiring.
    let rewired = common::assign_stream(&stream, &best.assignment);

    // Physical route B: permutation without signs, then the XOR mask.
    let unsigned = tsv3d_core::SignedPerm::from_parts(
        best.assignment.lines().to_vec(),
        vec![false; 16],
    )
    .unwrap();
    let permuted = common::assign_stream(&stream, &unsigned);
    let line_inverted: Vec<bool> = (0..16)
        .map(|line| best.assignment.is_inverted(best.assignment.bit_of_line(line)))
        .collect();
    let masked = apply_mask(&permuted, invert_mask(&line_inverted)).unwrap();

    assert_eq!(rewired, masked, "mask folding must equal signed rewiring");
}

#[test]
fn correlator_raises_the_assignment_gain_for_muxed_pixels() {
    // Sec. 7: the correlator "increases the potential gain of a
    // bit-to-TSV assignment".
    let mux = ImageSensor::new(64, 48).rgb_mux_stream(9).unwrap();
    let coded = Correlator::new(8, 4).unwrap().encode(&mux).unwrap();

    let gain = |s: &tsv3d_stats::BitStream| {
        let p = common::problem(s, common::cap_model(2, 4, TsvGeometry::itrs_2018_min()));
        let best = optimize::anneal(&p, &common::anneal_options_quick()).unwrap();
        let rnd = optimize::random_mean(&p, 200, 1).unwrap();
        common::reduction_pct(best.power, rnd)
    };
    let g_raw = gain(&mux);
    let g_coded = gain(&coded);
    assert!(
        g_coded > g_raw,
        "correlated stream must be more exploitable: raw {g_raw:.2} % vs coded {g_coded:.2} %"
    );
}

#[test]
fn decoders_recover_streams_after_assignment_masking() {
    // Full TX→RX path: encode, mask-invert (assignment), transmit,
    // unmask, decode.
    let data = GaussianSource::new(12, 300.0).generate(3, 4_000).unwrap();
    let codec = GrayCodec::new(12).unwrap();
    let coded = codec.encode(&data).unwrap();
    let mask = invert_mask(&[true, false, true, true, false, false, true, false, true, true, false, true]);
    let on_wire = apply_mask(&coded, mask).unwrap();
    let received = apply_mask(&on_wire, mask).unwrap();
    assert_eq!(codec.decode(&received).unwrap(), data);
}
