//! End-to-end tests of `tsv3d converge`: single-trace convergence
//! reports over committed fixtures, `--compare` divergence flagging,
//! JSON output validity, deterministic SVG rendering, and the full
//! record-then-analyze loop through `tsv3d bench --trace`.
//!
//! Exit-code contract: 0 success, 1 runtime failure (unreadable file,
//! no `anneal.epoch` series), 2 usage error.

use std::path::PathBuf;
use std::process::{Command, Output};

use tsv3d_bench::json::{self, JsonValue};

fn tsv3d(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tsv3d"))
        .args(args)
        .env_remove("TSV3D_TELEMETRY")
        .output()
        .expect("tsv3d binary runs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// Path of a committed fixture trace (tests run from the package
/// root, `crates/experiments`).
fn fixture(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/data")
        .join(name)
        .to_str()
        .expect("fixture path is UTF-8")
        .to_string()
}

/// A per-test scratch directory under the target tmpdir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tsv3d_converge_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir is creatable");
    dir
}

#[test]
fn single_trace_report_tables_both_restarts() {
    let out = tsv3d(&["converge", &fixture("converge_small_a.jsonl")]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("2 restart series"), "{text}");
    assert!(text.contains("case: fixture_anneal"), "{text}");
    assert!(text.contains("calibrated:"), "{text}");
    for label in ["r0", "r1"] {
        assert!(text.contains(label), "series `{label}` tabled:\n{text}");
    }
    // r1 holds the global best (50 < 60) and improved over r0.
    assert!(text.contains("global best 5.000000e1 from r1"), "{text}");
    assert!(text.contains("2 of 2 restart(s) improved the global best"), "{text}");
}

#[test]
fn single_trace_json_is_valid_and_carries_the_schema() {
    let out = tsv3d(&[
        "converge",
        &fixture("converge_small_a.jsonl"),
        "--format",
        "json",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let doc = json::parse(&stdout(&out)).expect("output is valid JSON");
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some("tsv3d-converge/v1")
    );
    assert_eq!(doc.get("mode").and_then(JsonValue::as_str), Some("single"));
    let body = doc.get("report").expect("report body");
    let restarts = body.get("restarts").and_then(JsonValue::as_array).unwrap();
    assert_eq!(restarts.len(), 2);
    assert_eq!(
        restarts[0].get("label").and_then(JsonValue::as_str),
        Some("r0")
    );
    // r0 descends 100 → 60 and the last epoch adds nothing: the final
    // 25% of its iterations land inside epsilon of the final best.
    assert_eq!(
        restarts[0].get("iters_to_eps").and_then(JsonValue::as_u64),
        Some(75)
    );
    assert_eq!(
        body.get("global")
            .and_then(|g| g.get("best_label"))
            .and_then(JsonValue::as_str),
        Some("r1")
    );
}

#[test]
fn compare_flags_the_diverged_restart_only() {
    let out = tsv3d(&[
        "converge",
        "--compare",
        &fixture("converge_small_a.jsonl"),
        &fixture("converge_small_b.jsonl"),
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    // r0 is identical in both traces; r1 was given a collapsed accept
    // rate and a stalled descent in trace b.
    assert!(text.contains("1 of 2 matched restart(s) diverged"), "{text}");
    assert!(text.contains("accept-rate"), "{text}");
    assert!(text.contains("final-energy"), "{text}");
    assert!(text.contains("wasted iterations:"), "{text}");

    let out = tsv3d(&[
        "converge",
        "--compare",
        &fixture("converge_small_a.jsonl"),
        &fixture("converge_small_b.jsonl"),
        "--format",
        "json",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let doc = json::parse(&stdout(&out)).expect("compare output is valid JSON");
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some("tsv3d-converge/v1")
    );
    assert_eq!(doc.get("mode").and_then(JsonValue::as_str), Some("compare"));
    assert_eq!(doc.get("diverged").and_then(JsonValue::as_u64), Some(1));
    let pairs = doc.get("pairs").and_then(JsonValue::as_array).unwrap();
    assert_eq!(pairs.len(), 2);
    assert_eq!(pairs[0].get("diverged"), Some(&JsonValue::Bool(false)));
    assert_eq!(pairs[1].get("diverged"), Some(&JsonValue::Bool(true)));
}

#[test]
fn svg_renders_byte_identically_across_runs() {
    let dir = scratch("svg");
    let svg_a = dir.join("a.svg");
    let svg_b = dir.join("b.svg");
    for svg in [&svg_a, &svg_b] {
        let out = tsv3d(&[
            "converge",
            &fixture("converge_small_a.jsonl"),
            "--svg",
            svg.to_str().unwrap(),
        ]);
        assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    }
    let rendered = std::fs::read(&svg_a).unwrap();
    assert_eq!(
        rendered,
        std::fs::read(&svg_b).unwrap(),
        "same trace must render a byte-identical SVG"
    );
    let text = String::from_utf8(rendered).unwrap();
    assert!(text.starts_with("<?xml"), "self-contained SVG document");
    assert!(text.ends_with("</svg>\n"), "document is complete");
    assert_eq!(
        text.matches("<polyline").count(),
        2,
        "one descent curve per restart:\n{text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_without_epochs_exits_1_and_missing_file_too() {
    let dir = scratch("empty");
    let path = dir.join("spans_only.jsonl");
    std::fs::write(
        &path,
        "{\"t\":1.0,\"event\":\"span\",\"name\":\"core.anneal\",\"seconds\":0.5}\n",
    )
    .unwrap();
    let out = tsv3d(&["converge", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "stdout: {}", stdout(&out));
    assert!(stderr(&out).contains("no anneal.epoch series"), "{}", stderr(&out));

    let out = tsv3d(&["converge", "/nonexistent/нет.jsonl"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("cannot read"), "{}", stderr(&out));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The full loop the feature exists for: record an annealing run with
/// `tsv3d bench --trace`, then analyze and compare it. The anneal is
/// bit-identical at any thread count, so a serial trace and a
/// `--threads 2` trace of the same case produce matching restart
/// series and a clean comparison.
#[test]
fn bench_trace_roundtrip_compares_serial_against_threaded() {
    let dir = scratch("roundtrip");
    let serial = dir.join("serial.jsonl");
    let threaded = dir.join("threads.jsonl");
    for (path, threads) in [(&serial, "1"), (&threaded, "2")] {
        let out = tsv3d(&[
            "bench",
            "--case",
            "anneal_quick_3x3",
            "--iters",
            "1",
            "--warmup",
            "0",
            "--threads",
            threads,
            "--no-history",
            "--out-dir",
            dir.join("artifacts").to_str().unwrap(),
            "--trace",
            path.to_str().unwrap(),
        ]);
        assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
        assert!(
            stdout(&out).contains("wrote telemetry trace"),
            "{}",
            stdout(&out)
        );
    }

    // Single-trace report sees the case's two restarts.
    let out = tsv3d(&["converge", serial.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("2 restart series"), "{text}");
    assert!(text.contains("case: anneal_quick_3x3"), "{text}");

    // The comparison is clean: same seed, same search, no divergence.
    let out = tsv3d(&[
        "converge",
        "--compare",
        serial.to_str().unwrap(),
        threaded.to_str().unwrap(),
        "--format",
        "json",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let doc = json::parse(&stdout(&out)).expect("compare output is valid JSON");
    assert_eq!(doc.get("diverged").and_then(JsonValue::as_u64), Some(0));
    let pairs = doc.get("pairs").and_then(JsonValue::as_array).unwrap();
    assert_eq!(pairs.len(), 2, "both restarts matched across the traces");
    let _ = std::fs::remove_dir_all(&dir);
}
