//! End-to-end tests of `tsv3d dash`: byte-determinism of the HTML
//! dashboard across repeated runs and `--threads` values, the
//! `tsv3d-dash/v1` JSON index schema pin, the 0/1/2 exit-code
//! contract, and the cross-subcommand `--format json` consistency
//! audit (every analysis surface advertises the flag and emits its
//! pinned schema version string).

use std::path::PathBuf;
use std::process::{Command, Output};

use tsv3d_bench::json::{self, JsonValue};

fn tsv3d(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tsv3d"))
        .args(args)
        .env_remove("TSV3D_TELEMETRY")
        .env_remove("TSV3D_METRICS_ADDR")
        .output()
        .expect("tsv3d binary runs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// Repo-root-relative path (tests run from `crates/experiments`).
fn repo(path: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(path)
        .to_str()
        .expect("path is UTF-8")
        .to_string()
}

fn fixture(name: &str) -> String {
    repo(&format!("tests/data/{name}"))
}

fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tsv3d_dash_{label}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The canonical full-input invocation: committed bench artifacts and
/// experiment artifacts, a fixture ledger, and fixture traces for the
/// flamegraph and convergence panels.
fn dash_args<'a>(out: &'a str, extra: &[&'a str]) -> Vec<String> {
    [
        "dash",
        "--bench-dir",
        &repo("results/bench"),
        "--history",
        &fixture("history_regressed.jsonl"),
        "--trace",
        &fixture("pulse_trace_mixed.jsonl"),
        "--converge",
        &fixture("converge_small_a.jsonl"),
        "--artifacts",
        &repo("results"),
        "--out",
        out,
    ]
    .iter()
    .map(|s| s.to_string())
    .chain(extra.iter().map(|s| s.to_string()))
    .collect()
}

fn run_dash(out: &str, extra: &[&str]) -> Output {
    let args = dash_args(out, extra);
    let args: Vec<&str> = args.iter().map(String::as_str).collect();
    tsv3d(&args)
}

#[test]
fn dashboard_is_byte_identical_across_runs_and_thread_counts() {
    let dir = scratch("determinism");
    let base = dir.join("a.html");
    let out = run_dash(base.to_str().unwrap(), &[]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let reference = std::fs::read(&base).expect("dashboard written");
    assert!(!reference.is_empty());

    // Repeated runs and every ingestion fan-out width produce the
    // exact same bytes — the dashboard is a pure function of its
    // inputs, with no wall clock and no current git revision.
    for (label, extra) in [
        ("rerun", vec![]),
        ("t2", vec!["--threads", "2"]),
        ("t3", vec!["--threads", "3"]),
        ("t8", vec!["--threads", "8"]),
    ] {
        let path = dir.join(format!("{label}.html"));
        let out = run_dash(path.to_str().unwrap(), &extra);
        assert_eq!(out.status.code(), Some(0), "{label} stderr: {}", stderr(&out));
        let bytes = std::fs::read(&path).expect("dashboard written");
        assert_eq!(
            bytes, reference,
            "{label}: dashboard bytes must not depend on reruns or --threads"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dashboard_html_is_self_contained_and_fuses_every_section() {
    let dir = scratch("content");
    let path = dir.join("dash.html");
    let out = run_dash(path.to_str().unwrap(), &[]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let html = std::fs::read_to_string(&path).unwrap();
    assert!(html.starts_with("<!DOCTYPE html>"), "{}", &html[..60.min(html.len())]);
    // Self-containment: no scripts, no stylesheets, no referenced
    // assets. (Inline SVG xmlns URLs are declarations, not fetches.)
    assert!(!html.contains("<script"), "no JS");
    assert!(!html.contains("<link"), "no external CSS");
    assert!(!html.contains(" src="), "no referenced assets");
    // Every panel made it in: bench cases, trend + changepoint
    // verdicts from the ledger, the three figures, and the committed
    // experiment artifacts.
    assert!(html.contains("Bench cases"), "{html}");
    assert!(html.contains("gray_encode_w16_4k"), "ledger case present");
    assert!(html.contains("regressed@eeee555"), "changepoint verdict surfaced");
    assert!(html.contains("<svg"), "inline SVG figures present");
    assert!(html.contains("fig3_gaussian.txt"), "artifact listing present");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dash_json_index_pins_the_schema() {
    let dir = scratch("json");
    let path = dir.join("dash.html");
    let out = run_dash(path.to_str().unwrap(), &["--format", "json"]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let value = json::parse(&stdout(&out)).expect("stdout is one JSON document");
    assert_eq!(
        value.get("schema").and_then(JsonValue::as_str),
        Some("tsv3d-dash/v1")
    );
    assert!(
        value.get("bench_files").and_then(JsonValue::as_u64).unwrap_or(0) >= 10,
        "committed bench artifacts ingested"
    );
    // The regressed fixture ledger surfaces through the index too.
    assert_eq!(value.get("regressed").and_then(JsonValue::as_u64), Some(1));
    let sections = value.get("sections").expect("sections object");
    assert_eq!(
        sections.get("flamegraph").map(|v| matches!(v, JsonValue::Bool(true))),
        Some(true)
    );
    assert_eq!(
        sections.get("converge").map(|v| matches!(v, JsonValue::Bool(true))),
        Some(true)
    );
    // The HTML is written even in json mode.
    assert!(path.exists(), "--format json still writes --out");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dash_exit_codes_follow_the_contract() {
    let dir = scratch("exits");
    // Usage errors exit 2 and print the usage text.
    let out = tsv3d(&["dash", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("Usage: tsv3d dash"), "{}", stderr(&out));
    let out = tsv3d(&["dash", "--threads", "0"]);
    assert_eq!(out.status.code(), Some(2));
    let out = tsv3d(&["dash", "--format", "yaml"]);
    assert_eq!(out.status.code(), Some(2));

    // An explicitly-named unreadable input is an operational failure.
    let html = dir.join("x.html");
    let out = tsv3d(&[
        "dash",
        "--history",
        "/nonexistent/ledger.jsonl",
        "--out",
        html.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("cannot read"), "{}", stderr(&out));
    let out = tsv3d(&[
        "dash",
        "--trace",
        "/nonexistent/trace.jsonl",
        "--out",
        html.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));

    // Missing *defaults* degrade: pointed at empty directories with no
    // ledger, the dashboard still renders (with empty sections).
    let empty = dir.join("empty");
    std::fs::create_dir_all(&empty).unwrap();
    let out = tsv3d(&[
        "dash",
        "--bench-dir",
        empty.to_str().unwrap(),
        "--artifacts",
        empty.to_str().unwrap(),
        "--out",
        html.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let page = std::fs::read_to_string(&html).unwrap();
    assert!(page.contains("data as of unknown"), "empty inputs degrade");
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite audit: every analysis subcommand advertises `--format
/// json|text` in its usage text and emits its pinned schema version
/// string in json mode. `bench` reports through its artifact schema
/// instead, pinned from a committed artifact; `serve` has no report
/// document.
#[test]
fn format_json_audit_pins_every_subcommand_schema() {
    use tsv3d_bench::cli;

    let dir = scratch("audit");
    let html = dir.join("dash.html");
    let html_path = html.to_str().unwrap().to_string();
    let steady = fixture("history_steady.jsonl");
    let trace = fixture("converge_small_a.jsonl");
    let pulse = fixture("pulse_live.json");

    let table: Vec<(&str, &str, Vec<&str>, &str)> = vec![
        (
            "trace",
            cli::TRACE_USAGE,
            vec!["trace", &trace, "--format", "json"],
            "tsv3d-trace/v1",
        ),
        (
            "converge",
            cli::CONVERGE_USAGE,
            vec!["converge", &trace, "--format", "json"],
            "tsv3d-converge/v1",
        ),
        (
            "history",
            cli::HISTORY_USAGE,
            vec!["history", &steady, "--format", "json"],
            "tsv3d-history-report/v1",
        ),
        (
            "history --detect",
            cli::HISTORY_USAGE,
            vec!["history", &steady, "--detect", "--format", "json"],
            "tsv3d-history-detect/v1",
        ),
        (
            "explain",
            cli::EXPLAIN_USAGE,
            vec!["explain", "--method", "greedy", "--format", "json"],
            "tsv3d-explain/v1",
        ),
        (
            "watch",
            cli::WATCH_USAGE,
            vec!["watch", &pulse, "--format", "json"],
            "tsv3d-pulse/v1",
        ),
        (
            "dash",
            cli::DASH_USAGE,
            vec![
                "dash",
                "--bench-dir",
                &steady, // not a dir: degrades to an empty bench table
                "--out",
                &html_path,
                "--format",
                "json",
            ],
            "tsv3d-dash/v1",
        ),
    ];
    for (name, usage, args, schema) in table {
        assert!(
            usage.contains("--format json|text"),
            "{name}: usage must advertise --format json|text"
        );
        let out = tsv3d(&args);
        assert_eq!(out.status.code(), Some(0), "{name} stderr: {}", stderr(&out));
        let value = json::parse(&stdout(&out))
            .unwrap_or_else(|e| panic!("{name}: stdout is one JSON document ({e})"));
        assert_eq!(
            value.get("schema").and_then(JsonValue::as_str),
            Some(schema),
            "{name}: schema version string"
        );
    }

    // bench: the artifact carries the schema; pin it from a committed
    // artifact instead of a (slow) fresh run.
    let artifact = std::fs::read_to_string(repo("results/bench/BENCH_anneal_quick_3x3.json"))
        .expect("committed bench artifact");
    let value = json::parse(&artifact).expect("artifact parses");
    assert_eq!(
        value.get("schema").and_then(JsonValue::as_str),
        Some("tsv3d-bench/v2")
    );
    std::fs::remove_dir_all(&dir).ok();
}
