//! End-to-end tests of `tsv3d explain`: per-TSV attribution values
//! checked against an independent core-API recomputation, the
//! `--compare` identity-vs-optimized roundtrip, deterministic heatmap
//! SVG rendering, and the exit-code contract.
//!
//! Exit-code contract: 0 success, 1 runtime failure (unreadable
//! baseline file, unwritable SVG), 2 usage error (bad flags, malformed
//! assignment or baseline content).

use std::path::PathBuf;
use std::process::{Command, Output};

use tsv3d_bench::json::{self, JsonValue};
use tsv3d_core::{attribution, AssignmentProblem, SignedPerm};
use tsv3d_model::{Extractor, LinearCapModel, TsvArray, TsvGeometry};
use tsv3d_stats::gen::SequentialSource;
use tsv3d_stats::SwitchingStats;

fn tsv3d(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tsv3d"))
        .args(args)
        .env_remove("TSV3D_TELEMETRY")
        .output()
        .expect("tsv3d binary runs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// Path of a committed fixture (tests run from the package root,
/// `crates/experiments`).
fn fixture(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/data")
        .join(name)
        .to_str()
        .expect("fixture path is UTF-8")
        .to_string()
}

/// A per-test scratch directory under the system tmpdir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tsv3d_explain_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir is creatable");
    dir
}

/// The known 4×4 case: `wide_2018` geometry, sequential stream with
/// branch probability 0.02, 4000 cycles, seed 7 — rebuilt here through
/// the core APIs, independently of the CLI's `ExplainSpec`.
fn known_4x4_problem() -> AssignmentProblem {
    let array = TsvArray::new(4, 4, TsvGeometry::wide_2018()).expect("valid geometry");
    let cap = LinearCapModel::fit(&Extractor::new(array)).expect("fit succeeds");
    let stream = SequentialSource::new(16, 0.02)
        .expect("supported width")
        .generate(7, 4_000)
        .expect("generation succeeds");
    AssignmentProblem::new(SwitchingStats::from_stream(&stream), cap).expect("sizes match")
}

/// CLI flags selecting exactly the [`known_4x4_problem`] case.
const KNOWN_CASE: [&str; 8] = [
    "--rows", "4", "--cols", "4", "--stream", "seq:0.02", "--cycles", "4000",
];

#[test]
fn help_lists_explain_and_prints_its_usage() {
    let out = tsv3d(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("explain"), "{}", stdout(&out));

    let out = tsv3d(&["explain", "--help"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("Usage: tsv3d explain"), "{text}");
    assert!(text.contains("--compare"), "{text}");
    assert!(text.contains("--svg"), "{text}");
}

#[test]
fn known_4x4_identity_values_match_an_independent_recomputation() {
    let mut args = vec!["explain"];
    args.extend_from_slice(&KNOWN_CASE);
    args.extend_from_slice(&["--method", "identity", "--top", "16", "--format", "json"]);
    let out = tsv3d(&args);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let doc = json::parse(&stdout(&out)).expect("output is valid JSON");
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some("tsv3d-explain/v1")
    );
    assert_eq!(doc.get("method").and_then(JsonValue::as_str), Some("identity"));

    // Recompute the same breakdown straight through the core API.
    let problem = known_4x4_problem();
    let identity = SignedPerm::identity(16);
    let breakdown = attribution::PowerBreakdown::compute(&problem, &identity);
    let classes = breakdown.class_totals(4, 4);
    let power = problem.power(&identity);
    let close = |field: &str, expected: f64| {
        let got = doc.get(field).and_then(JsonValue::as_f64).unwrap_or(f64::NAN);
        assert!(
            (got - expected).abs() < 1e-9 * expected.abs().max(1e-12),
            "{field}: CLI {got:.12e} vs core {expected:.12e}"
        );
    };
    close("power", power);
    close("identity_power", problem.identity_power());
    close("self_charge", breakdown.self_total());
    close("coupling_charge", breakdown.coupling_total());

    // Per-class roll-up: a 4×4 grid has 24 adjacent and 18 diagonal
    // pairs of its 120 — the hand-checkable combinatorial part.
    let json_classes = doc.get("classes").expect("classes object");
    for (name, pairs, charge) in [
        ("adjacent", 24, classes.adjacent),
        ("diagonal", 18, classes.diagonal),
        ("distant", 78, classes.distant),
    ] {
        let c = json_classes.get(name).expect("class entry");
        assert_eq!(c.get("pairs").and_then(JsonValue::as_u64), Some(pairs));
        let got = c.get("charge").and_then(JsonValue::as_f64).unwrap();
        assert!(
            (got - charge).abs() < 1e-9 * charge.abs().max(1e-12),
            "{name}: {got:.12e} vs {charge:.12e}"
        );
    }

    // Every per-TSV row matches the core breakdown term for its line.
    let per_tsv = doc.get("per_tsv").and_then(JsonValue::as_array).unwrap();
    assert_eq!(per_tsv.len(), 16);
    for row in per_tsv {
        let line = row.get("line").and_then(JsonValue::as_u64).unwrap() as usize;
        let term = &breakdown.per_tsv()[line];
        assert_eq!(row.get("bit").and_then(JsonValue::as_u64), Some(line as u64));
        for (field, expected) in [
            ("self_charge", term.self_charge),
            ("coupling_charge", term.coupling_charge),
            ("total", term.total()),
        ] {
            let got = row.get(field).and_then(JsonValue::as_f64).unwrap();
            assert!(
                (got - expected).abs() < 1e-9 * expected.abs().max(1e-12),
                "line {line} {field}: {got:.12e} vs {expected:.12e}"
            );
        }
    }
    let tsv_sum: f64 = breakdown.per_tsv().iter().map(|t| t.total()).sum();
    assert!((tsv_sum - power).abs() < 1e-9 * power.abs().max(1e-12));
}

#[test]
fn compare_identity_roundtrip_savings_equal_the_power_delta() {
    let mut args = vec!["explain"];
    args.extend_from_slice(&KNOWN_CASE);
    args.extend_from_slice(&["--method", "greedy", "--compare", "identity", "--format", "json"]);
    let out = tsv3d(&args);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let doc = json::parse(&stdout(&out)).expect("output is valid JSON");
    let power = doc.get("power").and_then(JsonValue::as_f64).unwrap();
    let identity_power = doc
        .get("identity_power")
        .and_then(JsonValue::as_f64)
        .unwrap();
    let cmp = doc.get("compare").expect("compare fragment");
    assert_eq!(
        cmp.get("baseline").and_then(JsonValue::as_str),
        Some("identity")
    );
    let baseline_power = cmp
        .get("baseline_power")
        .and_then(JsonValue::as_f64)
        .unwrap();
    let savings = cmp.get("savings").and_then(JsonValue::as_f64).unwrap();
    // The roundtrip identity: savings over the identity baseline must
    // equal `identity_power() - power()` computed from the same run.
    assert!(
        (savings - (identity_power - power)).abs() < 1e-9 * identity_power.abs().max(1e-12),
        "savings {savings:.12e} vs delta {:.12e}",
        identity_power - power
    );
    assert!(
        (baseline_power - identity_power).abs() < 1e-9 * identity_power.abs().max(1e-12)
    );
    // And it matches an independent core-API optimisation of the same
    // problem (greedy two-opt is deterministic).
    let problem = known_4x4_problem();
    let best = tsv3d_core::optimize::greedy_two_opt(&problem);
    let expected = problem.identity_power() - best.power;
    assert!(
        (savings - expected).abs() < 1e-9 * expected.abs().max(1e-12),
        "CLI savings {savings:.12e} vs core {expected:.12e}"
    );
    // Pair deltas: every entry's `saved` is baseline − current.
    let deltas = cmp.get("pair_deltas").and_then(JsonValue::as_array).unwrap();
    assert!(!deltas.is_empty());
    for d in deltas {
        let old = d.get("baseline_charge").and_then(JsonValue::as_f64).unwrap();
        let new = d.get("charge").and_then(JsonValue::as_f64).unwrap();
        let saved = d.get("saved").and_then(JsonValue::as_f64).unwrap();
        assert!((saved - (old - new)).abs() < 1e-12, "{saved} != {old} - {new}");
    }
}

#[test]
fn compare_against_the_committed_fixture_assignment_works() {
    let path = fixture("explain_assignment.json");
    let mut args = vec!["explain"];
    args.extend_from_slice(&KNOWN_CASE);
    args.extend_from_slice(&["--method", "identity", "--compare", &path, "--format", "json"]);
    let out = tsv3d(&args);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let doc = json::parse(&stdout(&out)).expect("output is valid JSON");
    let cmp = doc.get("compare").expect("compare fragment");
    assert_eq!(
        cmp.get("baseline_assignment").and_then(JsonValue::as_str),
        Some("15-,14,13,12,11,10,9,8,7,6,5,4,3,2,1,0")
    );
    // Savings against the fixture baseline reproduce the core's power
    // delta for that explicit assignment.
    let problem = known_4x4_problem();
    let baseline: SignedPerm = "15-,14,13,12,11,10,9,8,7,6,5,4,3,2,1,0".parse().unwrap();
    let expected = problem.power(&baseline) - problem.identity_power();
    let savings = cmp.get("savings").and_then(JsonValue::as_f64).unwrap();
    assert!(
        (savings - expected).abs() < 1e-9 * expected.abs().max(1e-12),
        "savings {savings:.12e} vs core delta {expected:.12e}"
    );
}

#[test]
fn heatmap_svg_is_byte_identical_across_runs() {
    let dir = scratch("svg");
    let svg_a = dir.join("a.svg");
    let svg_b = dir.join("b.svg");
    for svg in [&svg_a, &svg_b] {
        let out = tsv3d(&[
            "explain", "--rows", "3", "--cols", "3", "--geometry", "min", "--cycles", "2000",
            "--method", "spiral", "--svg", svg.to_str().unwrap(),
        ]);
        assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
        assert!(stdout(&out).contains("wrote heatmap SVG"), "{}", stdout(&out));
    }
    let rendered = std::fs::read(&svg_a).unwrap();
    assert_eq!(
        rendered,
        std::fs::read(&svg_b).unwrap(),
        "same spec must render a byte-identical heatmap"
    );
    let text = String::from_utf8(rendered).unwrap();
    assert!(text.starts_with("<?xml"), "self-contained SVG document");
    assert!(text.ends_with("</svg>\n"), "document is complete");
    assert_eq!(
        text.matches("<title>").count(),
        9,
        "one tooltip per via of the 3×3 array:\n{text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_inputs_exit_2_and_unreadable_files_exit_1() {
    let dir = scratch("bad");

    // Malformed explicit assignment: usage error.
    let out = tsv3d(&["explain", "--assignment", "0,0,1"]);
    assert_eq!(out.status.code(), Some(2), "stdout: {}", stdout(&out));
    assert!(stderr(&out).contains("Usage: tsv3d explain"), "{}", stderr(&out));

    // Baseline JSON without an `assignment` field: usage error.
    let no_field = dir.join("no_field.json");
    std::fs::write(&no_field, "{\"power\": 1.0}\n").unwrap();
    let out = tsv3d(&["explain", "--compare", no_field.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("no string `assignment` field"),
        "{}",
        stderr(&out)
    );

    // Baseline with the wrong width: usage error.
    let short = dir.join("short.txt");
    std::fs::write(&short, "2,0,1\n").unwrap();
    let out = tsv3d(&["explain", "--compare", short.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));

    // Unknown flag: usage error.
    let out = tsv3d(&["explain", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));

    // Unreadable baseline file: runtime error, not usage.
    let out = tsv3d(&["explain", "--compare", "/nonexistent/нет.json"]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("cannot read"), "{}", stderr(&out));

    let _ = std::fs::remove_dir_all(&dir);
}
