//! Integration tests of the beyond-the-paper extensions: exact solving,
//! closed-form statistics, bus partitioning, interchange formats and
//! the one-call flow.

use tsv3d_core::bundles::{assign_bus, Partition};
use tsv3d_core::{optimize, AssignmentProblem, SignedPerm};
use tsv3d_experiments::common;
use tsv3d_experiments::flow::{normalized_to_watts, Flow};
use tsv3d_model::{io, Extractor, LinearCapModel, TsvArray, TsvGeometry, TsvRcNetlist};
use tsv3d_stats::dbt::DualBitTypeModel;
use tsv3d_stats::gen::{GaussianSource, GrayFrame, ImageSensor, NocTraffic};
use tsv3d_stats::SwitchingStats;

#[test]
fn dbt_designed_assignment_works_on_real_streams() {
    // Design the assignment from the closed-form DBT statistics alone
    // (no sample data), then evaluate it on an actual sampled stream:
    // it must capture most of the empirically optimal gain.
    let cap = common::cap_model(4, 4, TsvGeometry::wide_2018());
    let analytic = DualBitTypeModel::new(16, 1000.0)
        .unwrap()
        .with_correlation(0.4)
        .stats();
    let design_problem = AssignmentProblem::new(analytic, cap.clone()).unwrap();
    let designed = optimize::anneal(&design_problem, &common::anneal_options_quick())
        .unwrap()
        .assignment;

    let stream = GaussianSource::new(16, 1000.0)
        .with_correlation(0.4)
        .generate(17, 20_000)
        .unwrap();
    let real_problem =
        AssignmentProblem::new(SwitchingStats::from_stream(&stream), cap).unwrap();
    let empirical_best = optimize::anneal(&real_problem, &common::anneal_options_quick())
        .unwrap()
        .power;
    let random = optimize::random_mean(&real_problem, 300, 5).unwrap();

    let designed_power = real_problem.power(&designed);
    let designed_gain = 1.0 - designed_power / random;
    let best_gain = 1.0 - empirical_best / random;
    assert!(designed_gain > 0.0, "DBT design must beat random");
    assert!(
        designed_gain > 0.5 * best_gain,
        "DBT design captures most of the gain: {designed_gain:.3} vs {best_gain:.3}"
    );
}

#[test]
fn csv_imported_model_reproduces_the_native_optimum() {
    // Export → import → identical optimisation outcome.
    let cap = common::cap_model(3, 3, TsvGeometry::itrs_2018_min());
    let c_r = io::matrix_from_csv(&io::matrix_to_csv(cap.c_r())).unwrap();
    let delta_c = io::matrix_from_csv(&io::matrix_to_csv(cap.delta_c())).unwrap();
    let imported = LinearCapModel::from_parts(c_r, delta_c);

    let stream = NocTraffic::new(9, 0.5).unwrap().generate(3, 10_000).unwrap();
    let stats = SwitchingStats::from_stream(&stream);
    let native = AssignmentProblem::new(stats.clone(), cap).unwrap();
    let round_tripped = AssignmentProblem::new(stats, imported).unwrap();

    let a = optimize::greedy_two_opt(&native);
    let b = optimize::greedy_two_opt(&round_tripped);
    assert_eq!(a.assignment, b.assignment);
    assert!((a.power - b.power).abs() < 1e-9 * a.power.abs());
}

#[test]
fn spice_export_matches_internal_network_element_count() {
    let array = TsvArray::new(3, 3, TsvGeometry::itrs_2018_min()).unwrap();
    let cap = Extractor::new(array.clone()).extract(&[0.5; 9]).unwrap();
    let net = TsvRcNetlist::from_extraction(&array, cap);
    let spice = io::to_spice(&net, "bundle", 3);
    // 9 ladders × 3 sections of R+L; caps: 9 grounds × 4 levels + 36
    // couplings × 4 levels.
    assert_eq!(spice.matches("\nR").count(), 27);
    assert_eq!(spice.matches("\nL").count(), 27);
    assert_eq!(spice.matches("\nC").count(), 36 + 144);
}

#[test]
fn bus_partitioning_and_flow_agree_on_single_bundle() {
    // A one-bundle "bus" must reproduce the plain flow's optimum.
    let stream = GaussianSource::new(9, 40.0).generate(2, 10_000).unwrap();
    let stats = SwitchingStats::from_stream(&stream);
    let cap = common::cap_model(3, 3, TsvGeometry::itrs_2018_min());
    let partition = Partition::contiguous(9, &[9]).unwrap();
    let opts = common::anneal_options_quick();
    let bus = assign_bus(&stats, &partition, &cap, &opts).unwrap();
    let problem = AssignmentProblem::new(stats, cap).unwrap();
    let single = optimize::anneal(&problem, &opts).unwrap();
    assert!((bus.total_power - single.power).abs() < 1e-9 * single.power.abs());
}

#[test]
fn assignment_text_form_survives_the_full_loop() {
    // Optimise, serialise, parse, re-evaluate: identical power.
    let stream = NocTraffic::new(9, 0.4).unwrap().generate(8, 8_000).unwrap();
    let problem = common::problem(
        &stream,
        common::cap_model(3, 3, TsvGeometry::itrs_2018_min()),
    );
    let best = optimize::anneal(&problem, &common::anneal_options_quick()).unwrap();
    let text = best.assignment.to_string();
    let parsed: SignedPerm = text.parse().unwrap();
    assert_eq!(problem.power(&parsed), best.power);
}

#[test]
fn flow_facade_runs_on_pgm_backed_image_data() {
    // Custom-image path through the high-level facade.
    let mut pgm = String::from("P2\n16 16\n255\n");
    for y in 0..16 {
        for x in 0..16 {
            pgm.push_str(&format!("{} ", (x * y * 255) / 225));
        }
    }
    let frame = GrayFrame::from_pgm(pgm.as_bytes()).unwrap();
    let sensor = ImageSensor::new(16, 16).with_custom_frames(vec![frame]);
    let stream = sensor
        .grayscale_stream(1)
        .unwrap()
        .with_stable_lines(&[false])
        .unwrap();
    let flow = Flow::new(3, 3, TsvGeometry::itrs_2018_min())
        .unwrap()
        .with_anneal_options(common::anneal_options_quick());
    let report = flow.analyze(&stream).unwrap();
    assert!(report.optimal_power <= report.random_power);
    // Eq. 1 conversion is sane: femto-farad scale × 1 V² × 3 GHz ⇒ µW.
    let watts = normalized_to_watts(report.optimal_power, 1.0, 3.0e9);
    assert!(watts > 1e-8 && watts < 1e-2, "{watts:.3e} W");
}

#[test]
fn pareto_weight_zero_equals_plain_power_annealing_quality() {
    let stream = GaussianSource::new(9, 40.0).generate(12, 8_000).unwrap();
    let problem = common::problem(
        &stream,
        common::cap_model(3, 3, TsvGeometry::wide_2018()),
    );
    let opts = common::anneal_options_quick();
    let plain = optimize::anneal(&problem, &opts).unwrap();
    let weighted = optimize::anneal_objective(&problem, |a| problem.power(a), &opts).unwrap();
    // Same objective, both near-optimal: within a percent of each other.
    let rel = (weighted.power - plain.power).abs() / plain.power;
    assert!(rel < 0.01, "rel = {rel:.4}");
}
