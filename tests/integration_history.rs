//! End-to-end tests of `tsv3d history` against the committed fixture
//! ledgers in `tests/data/`: trend tables, the `--gate-trend` exit
//! contract (0 pass / 1 regressed / 2 usage), pre-pulse ledger
//! back-compat, the `--detect` changepoint mode with its `--gate-detect`
//! CI gate, and the skip-and-count robustness policy for malformed
//! ledger lines.

use std::path::PathBuf;
use std::process::{Command, Output};

fn tsv3d(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tsv3d"))
        .args(args)
        .env_remove("TSV3D_TELEMETRY")
        .output()
        .expect("tsv3d binary runs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// Path of a committed fixture ledger (tests run from the package
/// root, `crates/experiments`).
fn fixture(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/data")
        .join(name)
        .to_str()
        .expect("fixture path is UTF-8")
        .to_string()
}

#[test]
fn steady_ledger_passes_the_trend_gate() {
    let out = tsv3d(&[
        "history",
        &fixture("history_steady.jsonl"),
        "--gate-trend",
        "10",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("anneal_quick_3x3"), "{text}");
    assert!(text.contains(" ok"), "{text}");
    assert!(!text.contains("REGRESSED"), "{text}");
    // The fixture carries one junk line and one truncated line — the
    // crash-mid-append failure modes — which are skipped and counted.
    assert!(
        stderr(&out).contains("2 of 7 ledger line(s) skipped"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn regressed_ledger_fails_the_trend_gate() {
    let out = tsv3d(&[
        "history",
        &fixture("history_regressed.jsonl"),
        "--gate-trend",
        "10",
    ]);
    assert_eq!(out.status.code(), Some(1), "stdout: {}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("REGRESSED"), "{text}");
    // The steady sibling case in the same ledger stays green.
    assert!(text.contains("mna_lu_factor_n40"), "{text}");
    let err = stderr(&out);
    assert!(
        err.contains("regressed beyond --gate-trend") && err.contains("gray_encode_w16_4k"),
        "{err}"
    );
}

#[test]
fn case_filter_can_rescue_a_gated_run() {
    // Filtering to the healthy case removes the regression from view,
    // so the same ledger gates green.
    let out = tsv3d(&[
        "history",
        &fixture("history_regressed.jsonl"),
        "--case",
        "mna_lu",
        "--gate-trend",
        "10",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(!stdout(&out).contains("gray_encode"), "{}", stdout(&out));
}

#[test]
fn insufficient_window_never_fails_the_gate() {
    // One prior record is below MIN_WINDOW: even a 3x slowdown under
    // --gate-trend 0 is reported, not gated — a young ledger is not a
    // regression.
    let out = tsv3d(&[
        "history",
        &fixture("history_short.jsonl"),
        "--gate-trend",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(0), "stdout: {}", stdout(&out));
    assert!(stdout(&out).contains("insufficient window"), "{}", stdout(&out));
}

#[test]
fn json_format_emits_a_machine_readable_report() {
    use tsv3d_bench::json::{self, JsonValue};

    let out = tsv3d(&[
        "history",
        &fixture("history_regressed.jsonl"),
        "--format",
        "json",
        "--gate-trend",
        "10",
    ]);
    assert_eq!(out.status.code(), Some(1), "gate verdict survives --format json");
    let value = json::parse(&stdout(&out)).expect("stdout is one JSON document");
    assert_eq!(
        value.get("schema").and_then(JsonValue::as_str),
        Some("tsv3d-history-report/v1")
    );
    assert_eq!(value.get("records").and_then(JsonValue::as_u64), Some(9));
    let cases = match value.get("cases") {
        Some(JsonValue::Array(items)) => items,
        other => panic!("cases must be an array, got {other:?}"),
    };
    assert_eq!(cases.len(), 2);
    let statuses: Vec<&str> = cases
        .iter()
        .filter_map(|c| c.get("status").and_then(JsonValue::as_str))
        .collect();
    assert!(statuses.contains(&"regressed"), "{statuses:?}");
    assert!(statuses.contains(&"ok"), "{statuses:?}");
}

#[test]
fn prepulse_records_parse_trend_and_gate_without_skips() {
    // The fixture ledger predates the pulse fields: no record carries
    // wall_s or stalls. Every line must parse (no skip-and-count) and
    // participate fully in trends and gating.
    let out = tsv3d(&[
        "history",
        &fixture("history_prepulse.jsonl"),
        "--gate-trend",
        "10",
    ]);
    assert_eq!(out.status.code(), Some(1), "stdout: {}", stdout(&out));
    let err = stderr(&out);
    assert!(
        !err.contains("skipped"),
        "pre-pulse records must not be skipped:\n{err}"
    );
    let text = stdout(&out);
    // The table renders '-' for the absent pulse columns…
    assert!(text.contains("10 record(s)"), "{text}");
    assert!(text.contains("codec_hamming_w16"), "{text}");
    // …the steady case stays green, and the regression in equally
    // pre-pulse records still trips the gate.
    assert!(text.contains(" ok"), "{text}");
    assert!(text.contains("REGRESSED"), "{text}");
    assert!(err.contains("anneal_inc_delta_6x6"), "{err}");

    // Filtered to the steady case, the same pre-pulse ledger gates 0.
    let out = tsv3d(&[
        "history",
        &fixture("history_prepulse.jsonl"),
        "--case",
        "codec_hamming",
        "--gate-trend",
        "10",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
}

#[test]
fn detect_flags_the_regressed_fixture_and_clears_the_steady_one() {
    // The steady fixture: every series is steady or insufficient, so
    // even the gated detect run exits 0.
    let out = tsv3d(&[
        "history",
        &fixture("history_steady.jsonl"),
        "--detect",
        "--gate-detect",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("steady"), "{text}");
    assert!(!text.contains("REGRESSED"), "{text}");

    // The regressed fixture: the gray_encode series jumps 2x at its
    // last record (rev eeee555) — flagged at the exact revision, while
    // the 4-point mna series stays insufficient and never gates.
    let out = tsv3d(&[
        "history",
        &fixture("history_regressed.jsonl"),
        "--detect",
    ]);
    assert_eq!(out.status.code(), Some(0), "detect without gate reports only");
    let text = stdout(&out);
    assert!(text.contains("REGRESSED@eeee555"), "{text}");
    assert!(text.contains("insufficient"), "{text}");

    let out = tsv3d(&[
        "history",
        &fixture("history_regressed.jsonl"),
        "--gate-detect",
    ]);
    assert_eq!(out.status.code(), Some(1), "stdout: {}", stdout(&out));
    assert!(
        stderr(&out).contains("regression changepoint")
            && stderr(&out).contains("gray_encode_w16_4k"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn detect_json_emits_the_pinned_detect_schema() {
    use tsv3d_bench::json::{self, JsonValue};

    let out = tsv3d(&[
        "history",
        &fixture("history_regressed.jsonl"),
        "--detect",
        "--format",
        "json",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let value = json::parse(&stdout(&out)).expect("stdout is one JSON document");
    assert_eq!(
        value.get("schema").and_then(JsonValue::as_str),
        Some("tsv3d-history-detect/v1")
    );
    assert_eq!(value.get("regressed").and_then(JsonValue::as_u64), Some(1));
    let cases = match value.get("cases") {
        Some(JsonValue::Array(items)) => items,
        other => panic!("cases must be an array, got {other:?}"),
    };
    let gray = cases
        .iter()
        .find(|c| c.get("case").and_then(JsonValue::as_str) == Some("gray_encode_w16_4k"))
        .expect("gray case present");
    let wall = gray.get("wall_ns").expect("wall series");
    assert_eq!(
        wall.get("verdict").and_then(JsonValue::as_str),
        Some("regressed")
    );
    assert_eq!(
        wall.get("git_rev").and_then(JsonValue::as_str),
        Some("eeee555")
    );

    // Bad detect thresholds are usage errors under the 0/1/2 contract.
    let out = tsv3d(&[
        "history",
        &fixture("history_regressed.jsonl"),
        "--detect-pct",
        "-5",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("Usage: tsv3d history"));
}

#[test]
fn usage_errors_exit_2_and_missing_ledger_exits_1() {
    let out = tsv3d(&["history", "--window", "0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("Usage: tsv3d history"));

    let out = tsv3d(&["history", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));

    let out = tsv3d(&["history", "/nonexistent/ledger.jsonl"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("cannot read"));
}
