//! End-to-end tests of the memory-observability surface: allocation
//! deltas on span events, provenance on `run.start`, `tsv3d trace
//! --mem` / `--format json`, bench memory stats and `--gate-mem`.
//!
//! The `tsv3d` binary links the counting global allocator through the
//! experiments crate's `obs` module, so these tests exercise the real
//! production wiring, not a fixture.

use std::path::PathBuf;
use std::process::{Command, Output};
use tsv3d_bench::json::{self, JsonValue};

fn tsv3d_env(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_tsv3d"));
    cmd.args(args).env_remove("TSV3D_TELEMETRY");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("tsv3d binary runs")
}

fn tsv3d(args: &[&str]) -> Output {
    tsv3d_env(args, &[])
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tsv3d_memtrace_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir is creatable");
    dir
}

const ASSIGN_ARGS: &[&str] = &["assign", "--rows", "2", "--cols", "2", "--cycles", "500"];

#[test]
fn disabled_telemetry_stdout_is_byte_identical() {
    // The counting allocator is linked into every run; with telemetry
    // fully off it must be pure passthrough — two runs (and a run with
    // an explicitly non-telemetry value) produce identical bytes.
    let a = tsv3d(ASSIGN_ARGS);
    let b = tsv3d(ASSIGN_ARGS);
    let c = tsv3d_env(ASSIGN_ARGS, &[("TSV3D_TELEMETRY", "off")]);
    assert_eq!(a.status.code(), Some(0), "stderr: {}", stderr(&a));
    assert_eq!(a.stdout, b.stdout, "unset-env runs must be byte-identical");
    assert_eq!(a.stdout, c.stdout, "TSV3D_TELEMETRY=off is also disabled");
    assert!(
        !stdout(&a).contains("alloc_bytes"),
        "no telemetry leakage into stdout"
    );
}

#[test]
fn json_mode_spans_carry_alloc_deltas_and_runs_carry_provenance() {
    let dir = scratch("spans");
    let trace_path = dir.join("run_telemetry.jsonl");
    let out = tsv3d_env(
        ASSIGN_ARGS,
        &[
            ("TSV3D_TELEMETRY", "json"),
            ("TSV3D_TELEMETRY_PATH", trace_path.to_str().unwrap()),
            ("TSV3D_GIT_REV", "feedc0de"),
        ],
    );
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let text = std::fs::read_to_string(&trace_path).expect("trace written");

    let span_lines: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("\"event\":\"span\""))
        .collect();
    assert!(!span_lines.is_empty(), "instrumented run emits spans");
    for line in &span_lines {
        for key in ["alloc_bytes", "alloc_count", "peak_delta"] {
            assert!(line.contains(key), "span close lacks {key}: {line}");
        }
    }
    // The annealer allocates: at least one span must attribute bytes.
    assert!(
        span_lines.iter().any(|l| {
            let at = l.find("\"alloc_bytes\":").unwrap() + "\"alloc_bytes\":".len();
            !l[at..].starts_with('0')
        }),
        "all spans report zero bytes:\n{text}"
    );

    let start = text
        .lines()
        .find(|l| l.contains("\"event\":\"run.start\""))
        .expect("run.start present");
    let start_doc = json::parse(start).expect("run.start is valid JSON");
    assert_eq!(
        start_doc.get("git_rev").and_then(JsonValue::as_str),
        Some("feedc0de"),
        "provenance honours TSV3D_GIT_REV: {start}"
    );
    assert_eq!(
        start_doc.get("telemetry").and_then(JsonValue::as_str),
        Some("json")
    );
    assert!(
        start_doc
            .get("threads")
            .and_then(JsonValue::as_u64)
            .is_some_and(|t| t >= 1),
        "{start}"
    );
    assert!(start_doc.get("seed").and_then(JsonValue::as_u64).is_some());

    let done = text
        .lines()
        .find(|l| l.contains("\"event\":\"run.done\""))
        .expect("run.done present");
    let done_doc = json::parse(done).expect("run.done is valid JSON");
    assert!(
        done_doc
            .get("peak_bytes")
            .and_then(JsonValue::as_u64)
            .is_some_and(|b| b > 0),
        "process peak rides on run.done: {done}"
    );

    // `tsv3d trace --mem` ranks by self-allocated bytes.
    let out = tsv3d(&["trace", trace_path.to_str().unwrap(), "--mem"]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let report = stdout(&out);
    assert!(report.contains("self B"), "mem columns shown:\n{report}");
    assert!(report.contains("0 skipped"), "{report}");

    // Bytes-weighted collapsed stacks.
    let flame_path = dir.join("bytes.collapsed");
    let out = tsv3d(&[
        "trace",
        trace_path.to_str().unwrap(),
        "--mem",
        "--collapsed",
        flame_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));
    let flame = std::fs::read_to_string(&flame_path).unwrap();
    assert!(
        flame.lines().any(|l| {
            l.rsplit(' ').next().and_then(|n| n.parse::<u64>().ok()).unwrap_or(0) > 0
        }),
        "bytes-weighted stacks carry nonzero weights:\n{flame}"
    );

    // `--format json` emits one machine-readable rollup object.
    let out = tsv3d(&["trace", trace_path.to_str().unwrap(), "--format", "json"]);
    assert_eq!(out.status.code(), Some(0));
    let doc = json::parse(stdout(&out).trim()).expect("rollup is valid JSON");
    assert_eq!(doc.get("has_alloc"), Some(&JsonValue::Bool(true)));
    assert_eq!(doc.get("skipped").and_then(JsonValue::as_u64), Some(0));
    let spans = doc.get("spans").and_then(JsonValue::as_array).unwrap();
    assert!(spans
        .iter()
        .any(|s| s.get("self_bytes").and_then(JsonValue::as_u64).unwrap_or(0) > 0));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_surfaces_skipped_lines_in_every_format() {
    let dir = scratch("skipped");
    let path = dir.join("degraded.jsonl");
    std::fs::write(
        &path,
        "{\"t\":1.0,\"event\":\"ok\"}\nnot json\n{\"t\":2.0,\"event\":\"span\",\"name\":\"x\",\"seconds\":0.5,\"alloc_bytes\":128,\"alloc_count\":1,\"peak_delta\":0}\n",
    )
    .unwrap();
    let out = tsv3d(&["trace", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("1 skipped"), "{}", stdout(&out));
    assert!(
        stderr(&out).contains("1 of 3 line(s) skipped"),
        "stderr warning survives piping stdout: {}",
        stderr(&out)
    );
    let out = tsv3d(&["trace", path.to_str().unwrap(), "--format", "json"]);
    let doc = json::parse(stdout(&out).trim()).unwrap();
    assert_eq!(doc.get("skipped").and_then(JsonValue::as_u64), Some(1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_records_mem_stats_and_gate_mem_catches_regressions() {
    let dir = scratch("gatemem");
    let out_dir = dir.join("artifacts");
    let baseline = dir.join("base.json");
    let out = tsv3d(&[
        "bench",
        "--no-history",
        "--case",
        "gray_encode",
        "--iters",
        "2",
        "--warmup",
        "0",
        "--out-dir",
        out_dir.to_str().unwrap(),
        "--write-baseline",
        baseline.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(
        stdout(&out).contains("B/iter"),
        "per-case mem line printed: {}",
        stdout(&out)
    );

    // The v2 artifact carries the mem object.
    let artifact = out_dir.join("BENCH_gray_encode_w16_4k.json");
    let doc = json::parse(&std::fs::read_to_string(&artifact).unwrap()).unwrap();
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some("tsv3d-bench/v2")
    );
    let mem = doc.get("mem").expect("mem object in v2 artifact");
    let measured = mem
        .get("median_iter_bytes")
        .and_then(JsonValue::as_u64)
        .expect("median_iter_bytes present");
    assert!(measured > 0, "gray encode allocates its output Vec");
    assert!(mem.get("peak_bytes").and_then(JsonValue::as_u64).is_some());

    // The baseline row carries alloc_bytes_per_iter.
    let base_doc =
        json::parse(&std::fs::read_to_string(&baseline).unwrap()).unwrap();
    assert!(std::fs::read_to_string(&baseline)
        .unwrap()
        .contains("tsv3d-bench-baseline/v2"));
    let rows = base_doc.get("cases").and_then(JsonValue::as_array).unwrap();
    assert_eq!(
        rows[0].get("alloc_bytes_per_iter").and_then(JsonValue::as_u64),
        Some(measured)
    );

    // Hand-edit the baseline to a fraction of the real usage: the
    // current (unchanged) run now reads as a memory regression.
    let edited = format!(
        "{{\"cases\":[{{\"case\":\"gray_encode_w16_4k\",\"median_ns\":900000000000,\
         \"p95_ns\":900000000000,\"alloc_bytes_per_iter\":{}}}]}}",
        (measured / 2).max(1)
    );
    let edited_path = dir.join("edited.json");
    std::fs::write(&edited_path, &edited).unwrap();
    let out = tsv3d(&[
        "bench",
        "--no-history",
        "--case",
        "gray_encode",
        "--iters",
        "2",
        "--warmup",
        "0",
        "--out-dir",
        out_dir.to_str().unwrap(),
        "--baseline",
        edited_path.to_str().unwrap(),
        "--gate-mem",
        "20",
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "mem regression must exit 1; stdout: {}\nstderr: {}",
        stdout(&out),
        stderr(&out)
    );
    assert!(stdout(&out).contains("REGRESSED-MEM"), "{}", stdout(&out));

    // Same baseline without --gate-mem: informational only.
    let out = tsv3d(&[
        "bench",
        "--no-history",
        "--case",
        "gray_encode",
        "--iters",
        "2",
        "--warmup",
        "0",
        "--out-dir",
        out_dir.to_str().unwrap(),
        "--baseline",
        edited_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));

    // The self-written baseline gates clean on both axes.
    let out = tsv3d(&[
        "bench",
        "--no-history",
        "--case",
        "gray_encode",
        "--iters",
        "2",
        "--warmup",
        "0",
        "--out-dir",
        out_dir.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
        "--gate-mem",
        "20",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "identical workload must pass its own baseline: {}",
        stdout(&out)
    );

    // A v1 baseline (no mem fields) still parses and never mem-gates.
    let v1 = r#"{"cases":[{"case":"gray_encode_w16_4k","median_ns":900000000000,"p95_ns":900000000000}]}"#;
    let v1_path = dir.join("v1.json");
    std::fs::write(&v1_path, v1).unwrap();
    let out = tsv3d(&[
        "bench",
        "--no-history",
        "--case",
        "gray_encode",
        "--iters",
        "2",
        "--warmup",
        "0",
        "--out-dir",
        out_dir.to_str().unwrap(),
        "--baseline",
        v1_path.to_str().unwrap(),
        "--gate",
        "1000000",
        "--gate-mem",
        "20",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "v1 baseline has no mem data to gate on: {}\n{}",
        stdout(&out),
        stderr(&out)
    );

    let _ = std::fs::remove_dir_all(&dir);
}
