//! End-to-end integration: generator → statistics → capacitance model →
//! optimiser, crossing every library crate.

use tsv3d_core::{optimize, AssignmentProblem, SignedPerm};
use tsv3d_experiments::common;
use tsv3d_model::{Extractor, LinearCapModel, TsvArray, TsvGeometry};
use tsv3d_stats::gen::{GaussianSource, SequentialSource, UniformSource};
use tsv3d_stats::SwitchingStats;

fn problem_for(stream: &tsv3d_stats::BitStream, rows: usize, cols: usize) -> AssignmentProblem {
    let cap = LinearCapModel::fit(&Extractor::new(
        TsvArray::new(rows, cols, TsvGeometry::wide_2018()).expect("valid array"),
    ))
    .expect("fit succeeds");
    AssignmentProblem::new(SwitchingStats::from_stream(stream), cap).expect("sizes match")
}

#[test]
fn full_pipeline_optimum_dominates_alternatives() {
    let stream = SequentialSource::new(9, 0.02)
        .unwrap()
        .generate(1, 20_000)
        .unwrap();
    // Limit the inversion freedom so 9!·2^4 stays inside the exhaustive
    // budget (the sequential stream is balanced, so inversions barely
    // matter anyway).
    let mut flags = vec![false; 9];
    flags[..4].fill(true);
    let problem = problem_for(&stream, 3, 3).with_invertible(flags).unwrap();
    let exact = optimize::exhaustive(&problem).unwrap();
    // Exhaustive must dominate everything else on a 9-bit bundle.
    let annealed = optimize::anneal(&problem, &common::anneal_options()).unwrap();
    let greedy = optimize::greedy_two_opt(&problem);
    let identity = problem.identity_power();
    assert!(exact.power <= annealed.power * (1.0 + 1e-9));
    assert!(exact.power <= greedy.power * (1.0 + 1e-9));
    assert!(exact.power <= identity);
    // And the annealer gets within a fraction of a percent of exact.
    assert!((annealed.power - exact.power) / exact.power < 5e-3);
}

#[test]
fn physical_assignment_agrees_with_model_transformation() {
    // The deepest cross-crate invariant: transforming the statistics
    // via the signed permutation (model side) must give exactly the
    // power of the physically re-wired stream (generator side).
    let stream = GaussianSource::new(16, 2500.0)
        .with_correlation(0.4)
        .generate(5, 8_000)
        .unwrap();
    let problem = problem_for(&stream, 4, 4);
    let best = optimize::anneal(&problem, &common::anneal_options_quick()).unwrap();

    let rewired = common::assign_stream(&stream, &best.assignment);
    let rewired_problem = problem_for(&rewired, 4, 4);
    let physical = rewired_problem.identity_power();

    assert!(
        (best.power - physical).abs() < 1e-9 * physical.abs(),
        "model {:.6e} vs physical {physical:.6e}",
        best.power
    );
}

#[test]
fn uniform_random_data_leaves_nothing_to_reorder() {
    // With i.i.d. fair-coin bits every assignment is statistically
    // equivalent; the optimiser's gain over random must be tiny.
    let stream = UniformSource::new(9).unwrap().generate(3, 40_000).unwrap();
    let problem = problem_for(&stream, 3, 3);
    let best = optimize::anneal(&problem, &common::anneal_options_quick()).unwrap();
    let random = optimize::random_mean(&problem, 300, 3).unwrap();
    let gain = (1.0 - best.power / random) * 100.0;
    assert!(gain < 3.0, "gain on uniform data was {gain:.2} %");
}

#[test]
fn inversion_constraints_survive_the_whole_stack() {
    let stream = SequentialSource::new(9, 0.1)
        .unwrap()
        .generate(2, 5_000)
        .unwrap();
    let cap = LinearCapModel::fit(&Extractor::new(
        TsvArray::new(3, 3, TsvGeometry::wide_2018()).unwrap(),
    ))
    .unwrap();
    let flags = vec![true, false, true, false, true, false, true, false, true];
    let problem = AssignmentProblem::new(SwitchingStats::from_stream(&stream), cap)
        .unwrap()
        .with_invertible(flags.clone())
        .unwrap();
    for result in [
        optimize::anneal(&problem, &common::anneal_options_quick()).unwrap(),
        optimize::exhaustive(&problem).unwrap(),
    ] {
        for (bit, &may_invert) in flags.iter().enumerate() {
            assert!(
                may_invert || !result.assignment.is_inverted(bit),
                "bit {bit} inverted despite constraint"
            );
        }
    }
}

#[test]
fn stable_line_inversion_is_exploited() {
    // A line stuck at 0 should be driven inverted (ε = +1/2 shrinks its
    // capacitances) whenever inversions are allowed.
    let words: Vec<u64> = SequentialSource::new(8, 0.05)
        .unwrap()
        .generate(9, 10_000)
        .unwrap()
        .iter()
        .collect();
    let stream = tsv3d_stats::BitStream::from_words(8, words)
        .unwrap()
        .with_stable_lines(&[false])
        .unwrap();
    let problem = problem_for(&stream, 3, 3);
    let best = optimize::exhaustive(&problem);
    // 9! · 2^9 is above the exhaustive budget, so anneal instead.
    let best = match best {
        Ok(r) => r,
        Err(_) => optimize::anneal(&problem, &common::anneal_options()).unwrap(),
    };
    assert!(
        best.assignment.is_inverted(8),
        "the stable-at-0 line should be transmitted inverted"
    );
}

#[test]
fn signed_perm_reexport_matches_matrix_crate() {
    // The core crate re-exports the matrix crate's SignedPerm; both
    // paths must be the same type.
    let a: SignedPerm = tsv3d_matrix::SignedPerm::identity(4);
    let b = SignedPerm::identity(4);
    assert_eq!(a, b);
}
