//! End-to-end tests of `tsv3d serve`: spawn the real binary on an
//! ephemeral port, scrape `/metrics`, `/healthz`, `/runs` and `/dash`
//! over raw TCP (GET and HEAD), and verify the `--max-requests`
//! smoke-test exit path.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// A serve child that is killed on drop, so a failing assertion never
/// leaks a listener process into the test run.
struct ServeGuard {
    child: Child,
    addr: String,
    // Keeps the child's stdout pipe open: the serve process prints a
    // final summary line on exit, and a closed pipe would turn that
    // into a broken-pipe failure instead of a clean exit 0.
    _stdout: BufReader<std::process::ChildStdout>,
}

impl ServeGuard {
    /// Spawns `tsv3d serve --addr 127.0.0.1:0 <extra>` and parses the
    /// resolved bound address from the announcement line on stdout.
    fn spawn(extra: &[&str]) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_tsv3d"))
            .args(["serve", "--addr", "127.0.0.1:0"])
            .args(extra)
            .env_remove("TSV3D_TELEMETRY")
            .env_remove("TSV3D_METRICS_ADDR")
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("tsv3d serve spawns");
        let stdout = child.stdout.take().expect("stdout is piped");
        let mut reader = BufReader::new(stdout);
        let addr = loop {
            let mut line = String::new();
            let n = reader.read_line(&mut line).expect("stdout is readable");
            assert!(n > 0, "serve announces its address before EOF");
            if let Some(rest) = line.trim_end().strip_prefix("serving metrics on http://") {
                break rest.trim_end_matches('/').to_string();
            }
        };
        ServeGuard {
            child,
            addr,
            _stdout: reader,
        }
    }

    /// One raw HTTP request; returns the full response (head + body).
    fn request(&self, method: &str, path: &str) -> String {
        let mut conn = TcpStream::connect(&self.addr).expect("connect to serve");
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        conn.write_all(format!("{method} {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
            .expect("request written");
        let mut response = String::new();
        conn.read_to_string(&mut response).expect("response read");
        response
    }

    /// One raw HTTP GET; returns the full response (head + body).
    fn get(&self, path: &str) -> String {
        self.request("GET", path)
    }

    /// Waits for the child and returns its exit code.
    fn wait(mut self) -> i32 {
        let status = self.child.wait().expect("serve exits");
        status.code().expect("serve exits with a code")
    }
}

impl Drop for ServeGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn fixture(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/data")
        .join(name)
        .to_str()
        .expect("fixture path is UTF-8")
        .to_string()
}

#[test]
fn serve_smoke_answers_all_endpoints_and_exits_after_max_requests() {
    let serve = ServeGuard::spawn(&[
        "--max-requests",
        "3",
        "--history",
        &fixture("history_steady.jsonl"),
    ]);

    let health = serve.get("/healthz");
    assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
    assert!(health.contains("ok"), "{health}");

    let metrics = serve.get("/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
    assert!(
        metrics.contains("# TYPE tsv3d_uptime_seconds gauge"),
        "{metrics}"
    );

    // /runs serves the fixture ledger, newest record first.
    let runs = serve.get("/runs");
    assert!(runs.starts_with("HTTP/1.1 200 OK"), "{runs}");
    assert!(runs.contains("application/json"), "{runs}");
    assert!(runs.contains("tsv3d-history/v1"), "{runs}");
    assert!(runs.contains("anneal_quick_3x3"), "{runs}");
    let newest = runs.find("\"git_rev\":\"eeee555\"").expect("newest record");
    let oldest = runs.find("\"git_rev\":\"aaaa111\"").expect("oldest record");
    assert!(newest < oldest, "records are newest-first:\n{runs}");

    assert_eq!(serve.wait(), 0, "--max-requests is a clean exit path");
}

#[test]
fn serve_demo_exposes_a_live_growing_registry() {
    // No --max-requests: the guard kills the listener at the end; the
    // clean-exit path is covered by the smoke test above.
    let serve = ServeGuard::spawn(&["--demo"]);

    // The demo workload loops the annealer on a background thread —
    // scrapes race its first counter increments, so poll until the
    // registry shows life.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let first = loop {
        let body = serve.get("/metrics");
        assert!(body.starts_with("HTTP/1.1 200 OK"), "{body}");
        if body.contains("tsv3d_anneal_proposals_total ") {
            break body;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "demo counters never appeared:\n{body}"
        );
        std::thread::sleep(Duration::from_millis(20));
    };

    let count_of = |body: &str| -> f64 {
        body.lines()
            .find(|l| l.starts_with("tsv3d_anneal_proposals_total "))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .expect("proposals counter present")
    };
    let second = serve.get("/metrics");
    assert!(
        count_of(&second) >= count_of(&first),
        "counters are monotone across scrapes"
    );
}

#[test]
fn serve_dash_renders_the_live_dashboard() {
    let serve = ServeGuard::spawn(&[
        "--max-requests",
        "2",
        "--history",
        &fixture("history_steady.jsonl"),
    ]);
    let dash = serve.get("/dash");
    assert!(dash.starts_with("HTTP/1.1 200 OK"), "{dash}");
    assert!(dash.contains("text/html; charset=utf-8"), "{dash}");
    assert!(dash.contains("<!DOCTYPE html>"), "{dash}");
    // The live page fuses the ledger fixture and an in-process
    // registry snapshot — the serve counters are visible in the live
    // section because /dash counts itself before rendering.
    assert!(dash.contains("anneal_quick_3x3"), "{dash}");
    assert!(dash.contains("tsv3d_serve_requests_dash_total"), "{dash}");
    // No scripts, no external assets: the self-containment contract
    // holds for the served page too.
    assert!(!dash.contains("<script"), "{dash}");
    assert!(!dash.contains("<link"), "{dash}");
    let head = serve.request("HEAD", "/dash");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(head.contains("Content-Length: "), "{head}");
    let body = head.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("x");
    assert_eq!(body, "", "HEAD sends headers only:\n{head}");
    assert_eq!(serve.wait(), 0);
}

#[test]
fn serve_answers_head_on_every_endpoint() {
    let serve = ServeGuard::spawn(&["--max-requests", "4"]);
    for path in ["/metrics", "/healthz", "/runs", "/progress"] {
        let response = serve.request("HEAD", path);
        assert!(
            response.starts_with("HTTP/1.1 200 OK"),
            "HEAD {path}:\n{response}"
        );
        assert!(response.contains("Content-Length: "), "{response}");
        let body = response.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("x");
        assert_eq!(body, "", "HEAD {path} sends headers only:\n{response}");
    }
    assert_eq!(serve.wait(), 0);
}

#[test]
fn serve_without_ledger_serves_an_empty_runs_array() {
    let serve = ServeGuard::spawn(&[
        "--max-requests",
        "1",
        "--history",
        "/nonexistent/ledger.jsonl",
    ]);
    let runs = serve.get("/runs");
    assert!(runs.starts_with("HTTP/1.1 200 OK"), "{runs}");
    assert!(runs.ends_with("[]\n"), "missing ledger degrades to []:\n{runs}");
    assert_eq!(serve.wait(), 0);
}
