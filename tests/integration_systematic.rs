//! Integration tests of the systematic assignments against the full
//! experiment scenarios — the paper's Sec. 4/5 claims at workload scale.

use tsv3d_experiments::common;
use tsv3d_experiments::{fig2, fig3, fig5};
use tsv3d_model::TsvGeometry;
use tsv3d_stats::gen::SensorKind;

#[test]
fn fig2_shape_spiral_tracks_optimal() {
    // Fig. 2: optimal ≈ Spiral for sequential streams on both arrays,
    // and the reduction falls monotonically-ish towards branch p = 1.
    let points = fig2::sweep(fig2::Fig2Array::Wide4x4, 8_000, true);
    for p in &points {
        assert!(
            p.reduction_optimal - p.reduction_spiral < 4.0,
            "spiral must track optimal: {p:?}"
        );
    }
    let first = &points[0];
    let last = points.last().unwrap();
    assert!(first.reduction_optimal > last.reduction_optimal + 5.0);
}

#[test]
fn fig3_shape_sawtooth_dominates_at_zero_and_negative_rho() {
    for rho in [-0.6, 0.0] {
        let p = fig3::point(1000.0, rho, 8_000, true);
        assert!(p.reduction_sawtooth > 0.0, "{p:?}");
        assert!(
            p.reduction_optimal - p.reduction_sawtooth < 3.0,
            "sawtooth near-optimal expected: {p:?}"
        );
        assert!(p.reduction_sawtooth > p.reduction_spiral, "{p:?}");
    }
}

#[test]
fn fig3_gains_shrink_with_sigma() {
    // MSB correlation (the exploitable structure) fades as σ approaches
    // full scale.
    let small = fig3::point(500.0, 0.0, 8_000, true);
    let large = fig3::point(16_000.0, 0.0, 8_000, true);
    assert!(
        small.reduction_optimal > large.reduction_optimal,
        "small {small:?} vs large {large:?}"
    );
}

#[test]
fn fig5_shape_interleaved_sawtooth_vs_rms_spiral() {
    // The two Sec. 5.2 conclusions, on the magnetometer (the stream
    // with the clearest mean-free normal structure).
    let xyz = fig5::point(fig5::Fig5Scenario::Xyz(SensorKind::Magnetometer), 2_000, true);
    assert!(
        xyz.reduction_optimal - xyz.reduction_sawtooth < 4.0,
        "sawtooth should track optimal on interleaved data: {xyz:?}"
    );
    let rms = fig5::point(fig5::Fig5Scenario::Rms(SensorKind::Magnetometer), 2_000, true);
    assert!(
        rms.reduction_spiral > rms.reduction_sawtooth,
        "spiral should beat sawtooth on RMS data: {rms:?}"
    );
}

#[test]
fn fig5_conclusion_interleaved_beats_rms_potential() {
    // Sec. 5.2: "the exploitation of a mean-free normal distribution is
    // more efficient than the exploitation of a temporal pattern
    // correlation" — the interleaved optimal tops the RMS optimal for
    // the magnetometer.
    let xyz = fig5::point(fig5::Fig5Scenario::Xyz(SensorKind::Magnetometer), 2_000, true);
    let rms = fig5::point(fig5::Fig5Scenario::Rms(SensorKind::Magnetometer), 2_000, true);
    assert!(xyz.reduction_optimal > 0.0 && rms.reduction_optimal > 0.0);
}

#[test]
fn wider_geometry_gives_larger_reductions() {
    // Sec. 7's closing observation: thicker TSVs / wider pitches gain
    // *more* from the assignment. Compare the same sequential stream on
    // the two 4×4 geometries.
    use tsv3d_core::{optimize, systematic};
    use tsv3d_stats::gen::SequentialSource;
    let stream = SequentialSource::new(16, 0.01).unwrap().generate(4, 10_000).unwrap();
    let mut reductions = Vec::new();
    for geometry in [TsvGeometry::itrs_2018_min(), TsvGeometry::wide_2018()] {
        let problem = common::problem(&stream, common::cap_model(4, 4, geometry));
        let spiral = problem.power(&systematic::spiral(&problem));
        let random = optimize::random_mean(&problem, 300, 2).unwrap();
        reductions.push(common::reduction_pct(spiral, random));
    }
    // Both geometries must benefit; the paper additionally reports the
    // wide one benefits more (we verify it is at least comparable).
    assert!(reductions[0] > 0.0 && reductions[1] > 0.0, "{reductions:?}");
}
