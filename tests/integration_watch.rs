//! End-to-end tests of `tsv3d watch`: the 0/1/2 exit-code contract
//! over snapshot files, JSONL traces and a live `tsv3d serve`
//! `/progress` endpoint.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::Duration;

fn fixture(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/data")
        .join(name)
        .to_str()
        .expect("fixture path is UTF-8")
        .to_string()
}

fn watch(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tsv3d"))
        .arg("watch")
        .args(args)
        .env_remove("TSV3D_TELEMETRY")
        .env_remove("TSV3D_METRICS_ADDR")
        .output()
        .expect("tsv3d watch runs")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).to_string()
}

#[test]
fn live_snapshot_renders_a_table_and_exits_zero() {
    let out = watch(&[&fixture("pulse_live.json")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = stdout_of(&out);
    assert!(text.contains("restart"), "{text}");
    assert!(text.contains("r0"), "{text}");
    assert!(text.contains("running"), "{text}");
    assert!(text.contains("2 restart(s): 1 running, 1 done, 0 stalled"), "{text}");
}

#[test]
fn format_json_echoes_the_pulse_schema_with_derived_fields() {
    let out = watch(&[&fixture("pulse_live.json"), "--format", "json"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = stdout_of(&out);
    assert!(text.starts_with("{\"schema\":\"tsv3d-pulse/v1\""), "{text}");
    assert!(text.contains("\"stalled_count\":0"), "{text}");
    assert!(text.contains("\"all_done\":false"), "{text}");
    assert!(text.contains("\"eta_s\":30"), "{text}");
}

#[test]
fn a_stalled_snapshot_exits_one() {
    let out = watch(&[&fixture("pulse_stalled.json")]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(stdout_of(&out).contains("STALLED"));
}

#[test]
fn a_malformed_snapshot_exits_two() {
    let out = watch(&[&fixture("pulse_malformed.json")]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(err.contains("unsupported schema"), "{err}");
}

#[test]
fn an_unreadable_snapshot_exits_one() {
    let out = watch(&["/nonexistent/pulse.json"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}

#[test]
fn usage_errors_exit_two() {
    // No source at all.
    let none = watch(&[]);
    assert_eq!(none.status.code(), Some(2), "{none:?}");
    // Two sources at once.
    let both = watch(&[&fixture("pulse_live.json"), "--trace", "x.jsonl"]);
    assert_eq!(both.status.code(), Some(2), "{both:?}");
    // --poll without --addr.
    let poll = watch(&[&fixture("pulse_live.json"), "--poll", "1"]);
    assert_eq!(poll.status.code(), Some(2), "{poll:?}");
}

#[test]
fn trace_mode_skips_pulse_events_and_sees_the_finished_run() {
    let out = watch(&["--trace", &fixture("pulse_trace_mixed.jsonl")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = stdout_of(&out);
    assert!(text.contains("100/100"), "{text}");
    assert!(text.contains("2 restart(s): 0 running, 2 done, 0 stalled"), "{text}");
}

/// A serve child killed on drop (same shape as integration_serve.rs).
struct ServeGuard {
    child: Child,
    addr: String,
    _stdout: BufReader<std::process::ChildStdout>,
}

impl ServeGuard {
    fn spawn(extra: &[&str]) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_tsv3d"))
            .args(["serve", "--addr", "127.0.0.1:0"])
            .args(extra)
            .env_remove("TSV3D_TELEMETRY")
            .env_remove("TSV3D_METRICS_ADDR")
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("tsv3d serve spawns");
        let stdout = child.stdout.take().expect("stdout is piped");
        let mut reader = BufReader::new(stdout);
        let addr = loop {
            let mut line = String::new();
            let n = reader.read_line(&mut line).expect("stdout is readable");
            assert!(n > 0, "serve announces its address before EOF");
            if let Some(rest) = line.trim_end().strip_prefix("serving metrics on http://") {
                break rest.trim_end_matches('/').to_string();
            }
        };
        ServeGuard {
            child,
            addr,
            _stdout: reader,
        }
    }

    fn get(&self, path: &str) -> String {
        let mut conn = TcpStream::connect(&self.addr).expect("connect to serve");
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
            .expect("request written");
        let mut response = String::new();
        conn.read_to_string(&mut response).expect("response read");
        response
    }
}

impl Drop for ServeGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn watch_reads_a_live_serve_progress_endpoint() {
    let serve = ServeGuard::spawn(&["--demo"]);

    // The demo annealer registers its progress cells on first use;
    // poll /progress until restarts appear.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let response = serve.get("/progress");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("tsv3d-pulse/v1"), "{response}");
        if response.contains("\"restart\":0") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "demo progress never appeared:\n{response}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let out = watch(&["--addr", &serve.addr, "--format", "json"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = stdout_of(&out);
    assert!(text.starts_with("{\"schema\":\"tsv3d-pulse/v1\""), "{text}");
    assert!(text.contains("\"restart\":0"), "{text}");
    assert!(text.contains("\"stalled_count\":0"), "{text}");
}

#[test]
fn watch_against_a_dead_endpoint_exits_one() {
    // Bind-then-drop to get a port nothing listens on.
    let port = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr").port()
    };
    let out = watch(&["--addr", &format!("127.0.0.1:{port}")]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}
